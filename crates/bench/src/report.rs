//! Table, CSV, and JSON output for the harness.
//!
//! The JSON side is hand-rolled (the workspace deliberately carries no
//! serde): [`BenchRecord`] is the one schema every machine-readable
//! result uses, written as `BENCH_<experiment>.json` next to the CSVs
//! and read back by the `bench-smoke` CI gate.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple aligned-column table printed to stdout and mirrored to CSV.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and write `<out_dir>/<file>.csv`.
    pub fn emit(&self, out_dir: &str, file: &str) {
        print!("{}", self.render());
        if let Err(e) = self.write_csv(out_dir, file) {
            eprintln!("warning: could not write CSV {file}: {e}");
        }
    }

    fn write_csv(&self, out_dir: &str, file: &str) -> std::io::Result<()> {
        fs::create_dir_all(out_dir)?;
        let path = Path::new(out_dir).join(format!("{file}.csv"));
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// One machine-readable measurement: the schema behind every
/// `BENCH_<experiment>.json` file.
///
/// `params` identifies the configuration cell (sizes, seeds, knob
/// settings); `counts` carries the scheduling-independent atomic-op
/// telemetry ([`gpu_sim::metrics::MetricsSnapshot`]) that the `bench-smoke` gate
/// compares, because wall-clock on shared CI runners is noise but
/// deterministic-schedule atomic counts are exact.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Experiment name (matches the file's `BENCH_<experiment>` stem).
    pub experiment: String,
    /// Allocator under test (roster display name).
    pub allocator: String,
    /// Configuration-cell parameters, in a stable order.
    pub params: Vec<(String, String)>,
    /// Median wall time of the measured kernel, milliseconds. NaN is
    /// written as the explicit string `"untimed"` — a schema-level
    /// marker the perf gate skips deliberately (a *missing* or `null`
    /// `median_ms` is a validation error; see `repro perf-check`).
    pub median_ms: f64,
    /// Atomic-op and telemetry counters, in a stable order.
    pub counts: Vec<(String, u64)>,
}

impl BenchRecord {
    /// The key the smoke gate matches records on: allocator plus the
    /// rendered parameter list.
    pub fn key(&self) -> String {
        let params: Vec<String> = self.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}[{}]", self.allocator, params.join(","))
    }
}

/// Escape a string for a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render records as the `BENCH_<experiment>.json` document.
pub fn render_bench_json(experiment: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"gallatin-bench-v1\",\n");
    out.push_str(&format!("  \"experiment\": \"{}\",\n", json_escape(experiment)));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"experiment\": \"{}\",\n", json_escape(&r.experiment)));
        out.push_str(&format!("      \"allocator\": \"{}\",\n", json_escape(&r.allocator)));
        out.push_str("      \"params\": {");
        let params: Vec<String> = r
            .params
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
            .collect();
        out.push_str(&params.join(", "));
        out.push_str("},\n");
        if r.median_ms.is_finite() {
            out.push_str(&format!("      \"median_ms\": {:.6},\n", r.median_ms));
        } else {
            out.push_str("      \"median_ms\": \"untimed\",\n");
        }
        out.push_str("      \"counts\": {");
        let counts: Vec<String> =
            r.counts.iter().map(|(k, v)| format!("\"{}\": {}", json_escape(k), v)).collect();
        out.push_str(&counts.join(", "));
        out.push_str("}\n");
        out.push_str(if i + 1 == records.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `<out_dir>/BENCH_<experiment>.json`; returns the path written.
pub fn write_bench_json(
    out_dir: &str,
    experiment: &str,
    records: &[BenchRecord],
) -> std::io::Result<PathBuf> {
    fs::create_dir_all(out_dir)?;
    let path = Path::new(out_dir).join(format!("BENCH_{experiment}.json"));
    fs::write(&path, render_bench_json(experiment, records))?;
    Ok(path)
}

/// How a record's `median_ms` field is spelled on disk. The perf lane
/// distinguishes "deliberately untimed" (schema marker, gate skips)
/// from "missing/null" (a writer bug `repro perf-check` fails loudly
/// on — the silent-skip hole the nightly gate closes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MedianField {
    /// A finite number of milliseconds.
    Timed,
    /// The explicit `"untimed"` string marker.
    Untimed,
    /// JSON `null` (legacy writer; no longer produced).
    Null,
    /// The key is absent or holds an unrecognized value.
    Missing,
}

/// Classify the `median_ms` member of one record object.
pub fn median_field(record: &json::Value) -> MedianField {
    match record.get("median_ms") {
        Some(json::Value::Num(n)) if n.is_finite() => MedianField::Timed,
        Some(json::Value::Str(s)) if s == "untimed" => MedianField::Untimed,
        Some(json::Value::Null) => MedianField::Null,
        _ => MedianField::Missing,
    }
}

/// Decode one record object (an element of a `"records"` array) into a
/// [`BenchRecord`]. `"untimed"` and legacy `null` medians both come
/// back as NaN.
pub fn record_from_json(r: &json::Value) -> Result<BenchRecord, String> {
    let s = |k: &str| {
        r.get(k)
            .and_then(json::Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("record missing string \"{k}\""))
    };
    let pairs = |k: &str| -> Result<Vec<(String, json::Value)>, String> {
        Ok(r.get(k)
            .and_then(json::Value::as_object)
            .ok_or_else(|| format!("record missing object \"{k}\""))?
            .to_vec())
    };
    let median_ms = match r.get("median_ms") {
        Some(json::Value::Num(n)) => *n,
        Some(json::Value::Str(m)) if m == "untimed" => f64::NAN,
        Some(json::Value::Null) | None => f64::NAN,
        Some(other) => return Err(format!("median_ms has unexpected shape: {other:?}")),
    };
    Ok(BenchRecord {
        experiment: s("experiment")?,
        allocator: s("allocator")?,
        params: pairs("params")?
            .into_iter()
            .map(|(k, v)| {
                let v = v.as_str().ok_or_else(|| format!("param {k} not a string"))?;
                Ok((k, v.to_string()))
            })
            .collect::<Result<_, String>>()?,
        median_ms,
        counts: pairs("counts")?
            .into_iter()
            .map(|(k, v)| {
                let v = v.as_f64().ok_or_else(|| format!("count {k} not a number"))?;
                Ok((k, v as u64))
            })
            .collect::<Result<_, String>>()?,
    })
}

/// Read a `BENCH_<experiment>.json` file back into records.
pub fn read_bench_json(path: &Path) -> Result<Vec<BenchRecord>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let records = doc
        .get("records")
        .and_then(json::Value::as_array)
        .ok_or_else(|| format!("{}: no \"records\" array", path.display()))?;
    records.iter().map(record_from_json).collect()
}

/// A minimal JSON parser — just enough to read the documents
/// [`render_bench_json`] writes (objects, arrays, strings, numbers,
/// `true`/`false`/`null`). No dependency on external crates by design.
pub mod json {
    /// A parsed JSON value. Object keys keep insertion order.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (parsed as f64; bench counts fit exactly).
        Num(f64),
        /// A string literal.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, keys in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object member lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The string payload, if a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, if a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The element list, if an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The member list, if an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = *pos;
                    while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                        *pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&b[start..*pos])
                            .map_err(|_| format!("bad utf8 at byte {start}"))?,
                    );
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            out.push((key, parse_value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}

/// The telemetry counters a [`BenchRecord`] carries, extracted from a
/// metrics snapshot in a stable order.
pub fn counts_from(m: &gpu_sim::metrics::MetricsSnapshot) -> Vec<(String, u64)> {
    vec![
        ("atomic_rmw".to_string(), m.atomic_rmw),
        ("cas_attempts".to_string(), m.cas_attempts),
        ("cas_failures".to_string(), m.cas_failures),
        ("lock_acquires".to_string(), m.lock_acquires),
        ("coalesced_requests".to_string(), m.coalesced_requests),
        ("mallocs".to_string(), m.mallocs),
        ("frees".to_string(), m.frees),
        ("failed_mallocs".to_string(), m.failed_mallocs),
    ]
}

/// Counter deltas between two snapshots of the same [`gpu_sim::Metrics`]
/// (e.g. around one measured size in a sweep), in [`counts_from`] order.
pub fn counts_delta(
    before: &gpu_sim::metrics::MetricsSnapshot,
    after: &gpu_sim::metrics::MetricsSnapshot,
) -> Vec<(String, u64)> {
    counts_from(after)
        .into_iter()
        .zip(counts_from(before))
        .map(|((k, a), (_, b))| (k, a.saturating_sub(b)))
        .collect()
}

/// Format milliseconds with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms.is_nan() {
        "n/a".to_string()
    } else if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Format a ratio/percentage.
pub fn fmt_pct(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:.1}%", 100.0 * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        // Columns aligned: both rows end at the same width.
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('1') || l.contains("2.5")).collect();
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn csv_written() {
        let dir = std::env::temp_dir().join("gallatin-bench-test");
        let dir = dir.to_str().unwrap();
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.write_csv(dir, "unit").unwrap();
        let content = std::fs::read_to_string(format!("{dir}/unit.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn bench_json_round_trips() {
        let records = vec![
            BenchRecord {
                experiment: "ablation".into(),
                allocator: "Gallatin".into(),
                params: vec![("case".into(), "sweep".into()), ("seeds".into(), "8".into())],
                median_ms: 1.5,
                counts: vec![("cas_attempts".into(), 1234), ("atomic_rmw".into(), 56)],
            },
            BenchRecord {
                experiment: "ablation".into(),
                allocator: "Gallatin".into(),
                params: vec![("case".into(), "group \"quoted\"".into())],
                median_ms: f64::NAN, // rendered as "untimed", read back as NaN
                counts: vec![],
            },
        ];
        let dir = std::env::temp_dir().join("gallatin-bench-json-test");
        let path = write_bench_json(dir.to_str().unwrap(), "ablation", &records).unwrap();
        assert!(path.ends_with("BENCH_ablation.json"));
        let back = read_bench_json(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], records[0]);
        assert_eq!(back[1].params[0].1, "group \"quoted\"");
        assert!(back[1].median_ms.is_nan());
        assert_eq!(back[0].key(), "Gallatin[case=sweep,seeds=8]");
        // The untimed row is spelled with the explicit marker on disk.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"median_ms\": \"untimed\""));
        assert!(!text.contains("\"median_ms\": null"));
    }

    #[test]
    fn median_field_classifies_all_spellings() {
        use super::json::parse;
        let probe = |doc: &str| median_field(&parse(doc).unwrap());
        assert_eq!(probe(r#"{"median_ms": 1.5}"#), MedianField::Timed);
        assert_eq!(probe(r#"{"median_ms": "untimed"}"#), MedianField::Untimed);
        assert_eq!(probe(r#"{"median_ms": null}"#), MedianField::Null);
        assert_eq!(probe(r#"{"counts": {}}"#), MedianField::Missing);
        assert_eq!(probe(r#"{"median_ms": "soon"}"#), MedianField::Missing);
        // Legacy null still decodes (as NaN) for backward reads, but a
        // truly malformed median is an error, not a silent NaN.
        let legacy =
            parse(r#"{"experiment":"e","allocator":"a","params":{},"median_ms":null,"counts":{}}"#)
                .unwrap();
        assert!(record_from_json(&legacy).unwrap().median_ms.is_nan());
        let bad =
            parse(r#"{"experiment":"e","allocator":"a","params":{},"median_ms":[1],"counts":{}}"#)
                .unwrap();
        assert!(record_from_json(&bad).is_err());
    }

    #[test]
    fn json_parser_handles_the_grammar() {
        use super::json::{parse, Value};
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("{\"a\"").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(123.4), "123");
        assert_eq!(fmt_ms(1.234), "1.23");
        assert_eq!(fmt_ms(0.1234), "0.1234");
        assert_eq!(fmt_ms(f64::NAN), "n/a");
        assert_eq!(fmt_pct(0.891), "89.1%");
    }
}
