//! Trend rendering (`repro perf-report`): a markdown table and a CSV
//! over the full `gallatin-perf-v1` history, per series.
//!
//! The markdown lands in `PERF_TREND.md` next to the history (and in
//! the CI job summary via `scripts/perf_report.sh`); the CSV
//! (`perf_trend.csv`) is the machine-readable long form — one row per
//! (series, run) — for plotting trajectories.

use super::history::{history_path, series_key, PerfRun};
use crate::report::fmt_ms;
use std::fs;
use std::path::{Path, PathBuf};

/// Per-series summary over the whole history, in first-seen order.
struct Series {
    key: String,
    /// `(run index, median_ms)` — only finite medians.
    points: Vec<(usize, f64)>,
}

fn collect_series(history: &[PerfRun]) -> Vec<Series> {
    let mut out: Vec<Series> = Vec::new();
    for (i, run) in history.iter().enumerate() {
        for rec in &run.records {
            if !rec.median_ms.is_finite() {
                continue;
            }
            let key = series_key(rec);
            match out.iter_mut().find(|s| s.key == key) {
                Some(s) => s.points.push((i, rec.median_ms)),
                None => out.push(Series { key, points: vec![(i, rec.median_ms)] }),
            }
        }
    }
    out
}

/// Render the markdown trend report.
pub fn render_markdown(history: &[PerfRun]) -> String {
    let mut md = String::from("# Perf trend (gallatin-perf-v1)\n\n");
    if history.is_empty() {
        md.push_str("History is empty — run `repro perf` to record the first run.\n");
        return md;
    }
    md.push_str("## Runs\n\n| # | sha | stamp | host | samples | records |\n|---|-----|-------|------|---------|--------|\n");
    for (i, run) in history.iter().enumerate() {
        md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            i,
            run.sha,
            run.stamp,
            run.host,
            run.samples,
            run.records.len()
        ));
    }
    md.push_str(
        "\n## Series (medians in ms; Δ is last vs the median of the runs before it)\n\n\
         | series | runs | first | last | best | worst | Δ |\n\
         |--------|------|-------|------|------|-------|----|\n",
    );
    for s in collect_series(history) {
        let first = s.points.first().expect("series has a point").1;
        let last = s.points.last().expect("series has a point").1;
        let best = s.points.iter().map(|&(_, m)| m).fold(f64::INFINITY, f64::min);
        let worst = s.points.iter().map(|&(_, m)| m).fold(0.0, f64::max);
        let delta = if s.points.len() > 1 {
            let mut before: Vec<f64> =
                s.points[..s.points.len() - 1].iter().map(|&(_, m)| m).collect();
            before.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let base = before[before.len() / 2];
            format!("{:+.1}%", 100.0 * (last - base) / base)
        } else {
            "n/a".to_string()
        };
        md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            s.key,
            s.points.len(),
            fmt_ms(first),
            fmt_ms(last),
            fmt_ms(best),
            fmt_ms(worst),
            delta
        ));
    }
    md
}

/// Render the long-form CSV: one row per (series, run) point.
pub fn render_csv(history: &[PerfRun]) -> String {
    let mut csv = String::from("series,run,sha,stamp,host,median_ms\n");
    for s in collect_series(history) {
        for &(i, ms) in &s.points {
            let run = &history[i];
            csv.push_str(&format!(
                "\"{}\",{},{},{},{},{:.6}\n",
                s.key.replace('"', "\"\""),
                i,
                run.sha,
                run.stamp,
                run.host,
                ms
            ));
        }
    }
    csv
}

/// Write `PERF_TREND.md` and `perf_trend.csv` into the history
/// directory; returns both paths.
pub fn write_report(dir: &Path, history: &[PerfRun]) -> std::io::Result<(PathBuf, PathBuf)> {
    fs::create_dir_all(dir)?;
    let md = dir.join("PERF_TREND.md");
    fs::write(&md, render_markdown(history))?;
    let csv = dir.join("perf_trend.csv");
    fs::write(&csv, render_csv(history))?;
    debug_assert!(history_path(dir).parent() == Some(dir));
    Ok((md, csv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::BenchRecord;

    fn run(sha: &str, ms: f64) -> PerfRun {
        PerfRun {
            sha: sha.into(),
            stamp: "t".into(),
            host: "ci".into(),
            samples: 3,
            records: vec![
                BenchRecord {
                    experiment: "perf".into(),
                    allocator: "Gallatin".into(),
                    params: vec![("size".into(), "16".into())],
                    median_ms: ms,
                    counts: vec![],
                },
                BenchRecord {
                    experiment: "perf".into(),
                    allocator: "Gallatin".into(),
                    params: vec![("case".into(), "untimed".into())],
                    median_ms: f64::NAN,
                    counts: vec![],
                },
            ],
        }
    }

    #[test]
    fn markdown_summarizes_series() {
        let h = vec![run("a", 100.0), run("b", 110.0), run("c", 90.0)];
        let md = render_markdown(&h);
        assert!(md.contains("| 3 |"), "three runs of the series: {md}");
        assert!(md.contains("perf::Gallatin[size=16]"));
        // Δ of last (90) vs upper median of [100, 110] = 110 → -18.2%.
        assert!(md.contains("-18.2%"), "{md}");
        // Untimed rows never appear as series.
        assert!(!md.contains("case=untimed"));
        assert!(render_markdown(&[]).contains("History is empty"));
    }

    #[test]
    fn csv_is_long_form() {
        let h = vec![run("a", 100.0), run("b", 110.0)];
        let csv = render_csv(&h);
        assert_eq!(csv.lines().count(), 3, "{csv}");
        assert!(csv.lines().nth(1).unwrap().starts_with("\"perf::Gallatin[size=16]\",0,a,"));
        assert!(csv.contains(",110.000000"));
    }
}
