//! The `gallatin-perf-v1` history format: an append-only JSONL file of
//! per-run measurements under `results/history/`.
//!
//! One line per `repro perf` invocation. Each line is a self-contained
//! JSON object carrying the run's provenance (git SHA, timestamp, and
//! host label — all passed in by CI; timing is only comparable within
//! one host) plus every [`BenchRecord`] the perf suite produced, medians
//! taken over the run's repeated samples. Appending a line never
//! rewrites earlier ones, so the file is trivially mergeable across CI
//! artifact restores and safe to keep under version control.
//!
//! NaN medians are spelled with the schema's explicit `"untimed"`
//! marker (never `null` — see `repro perf-check`). Counters round-trip
//! through the f64-backed JSON parser, so the format is exact for
//! integers below 2^53 — comfortably above any real atomic counter.

use crate::report::{json, json_escape, record_from_json, BenchRecord};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Schema tag every history line must carry.
pub const PERF_SCHEMA: &str = "gallatin-perf-v1";

/// File name of the history inside the history directory.
pub const HISTORY_FILE: &str = "perf_history.jsonl";

/// One appended run: provenance plus its measured records.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfRun {
    /// Git SHA of the tree that produced the run (CI passes
    /// `github.sha`; local runs default to `local`).
    pub sha: String,
    /// Timestamp label (CI passes an ISO stamp; informational only —
    /// ordering is by file position).
    pub stamp: String,
    /// Host label; the gate only compares runs with equal labels, so a
    /// laptop run never flags a regression against a CI runner.
    pub host: String,
    /// Repeated samples the medians were taken over.
    pub samples: u32,
    /// The suite's records, medians per record.
    pub records: Vec<BenchRecord>,
}

/// The series key trend/gate group measurements under: experiment plus
/// the record's own allocator+params key.
pub fn series_key(r: &BenchRecord) -> String {
    format!("{}::{}", r.experiment, r.key())
}

/// Render one run as a single JSONL line (no trailing newline).
pub fn render_run(run: &PerfRun) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{}\",\"sha\":\"{}\",\"stamp\":\"{}\",\"host\":\"{}\",\"samples\":{},\"records\":[",
        PERF_SCHEMA,
        json_escape(&run.sha),
        json_escape(&run.stamp),
        json_escape(&run.host),
        run.samples,
    ));
    for (i, r) in run.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"experiment\":\"{}\",\"allocator\":\"{}\",\"params\":{{",
            json_escape(&r.experiment),
            json_escape(&r.allocator),
        ));
        let params: Vec<String> = r
            .params
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
            .collect();
        out.push_str(&params.join(","));
        if r.median_ms.is_finite() {
            out.push_str(&format!("}},\"median_ms\":{:.6},\"counts\":{{", r.median_ms));
        } else {
            out.push_str("},\"median_ms\":\"untimed\",\"counts\":{");
        }
        let counts: Vec<String> =
            r.counts.iter().map(|(k, v)| format!("\"{}\":{}", json_escape(k), v)).collect();
        out.push_str(&counts.join(","));
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Parse one history line back into a [`PerfRun`].
pub fn parse_run(line: &str) -> Result<PerfRun, String> {
    let doc = json::parse(line)?;
    let schema = doc.get("schema").and_then(json::Value::as_str).unwrap_or("");
    if schema != PERF_SCHEMA {
        return Err(format!("unsupported schema {schema:?} (want {PERF_SCHEMA:?})"));
    }
    let s = |k: &str| {
        doc.get(k)
            .and_then(json::Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("run missing string \"{k}\""))
    };
    let records = doc
        .get("records")
        .and_then(json::Value::as_array)
        .ok_or_else(|| "run missing \"records\" array".to_string())?
        .iter()
        .map(record_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(PerfRun {
        sha: s("sha")?,
        stamp: s("stamp")?,
        host: s("host")?,
        samples: doc.get("samples").and_then(json::Value::as_f64).unwrap_or(1.0) as u32,
        records,
    })
}

/// Path of the history file inside `dir`.
pub fn history_path(dir: &Path) -> PathBuf {
    dir.join(HISTORY_FILE)
}

/// Append one run to `<dir>/perf_history.jsonl`, creating the directory
/// and file on first use. Returns the path written.
pub fn append_run(dir: &Path, run: &PerfRun) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = history_path(dir);
    let mut f = fs::OpenOptions::new().create(true).append(true).open(&path)?;
    writeln!(f, "{}", render_run(run))?;
    Ok(path)
}

/// Read every run from `<dir>/perf_history.jsonl`, oldest first. A
/// missing file is an empty history (the CI perf job seeds from the
/// checked-in baseline, but a fresh clone gating its very first run is
/// legitimate too). Blank lines are skipped; a malformed line is an
/// error naming its line number.
pub fn read_history(dir: &Path) -> Result<Vec<PerfRun>, String> {
    let path = history_path(dir);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_run(l).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> PerfRun {
        PerfRun {
            sha: "abc123".into(),
            stamp: "2026-08-09T00:00:00Z".into(),
            host: "ci-Linux".into(),
            samples: 3,
            records: vec![
                BenchRecord {
                    experiment: "perf".into(),
                    allocator: "Gallatin".into(),
                    params: vec![("size".into(), "16".into()), ("wide".into(), "on".into())],
                    median_ms: 12.25,
                    counts: vec![("cas_attempts".into(), 42)],
                },
                BenchRecord {
                    experiment: "perf".into(),
                    allocator: "Gallatin".into(),
                    params: vec![("case".into(), "group \"q\"".into())],
                    median_ms: f64::NAN,
                    counts: vec![],
                },
            ],
        }
    }

    #[test]
    fn line_round_trips() {
        let run = sample_run();
        let line = render_run(&run);
        assert!(!line.contains('\n'), "JSONL lines must be single-line");
        assert!(line.contains("\"untimed\""));
        let back = parse_run(&line).unwrap();
        assert_eq!(back.sha, run.sha);
        assert_eq!(back.samples, 3);
        assert_eq!(back.records[0], run.records[0]);
        assert!(back.records[1].median_ms.is_nan());
        assert_eq!(back.records[1].params[0].1, "group \"q\"");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let line = render_run(&sample_run()).replace(PERF_SCHEMA, "gallatin-perf-v0");
        assert!(parse_run(&line).unwrap_err().contains("unsupported schema"));
    }

    #[test]
    fn file_appends_and_reads_back() {
        let dir = std::env::temp_dir().join("gallatin-perf-history-test");
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(read_history(&dir).unwrap(), vec![]);
        let mut a = sample_run();
        append_run(&dir, &a).unwrap();
        let mut b = sample_run();
        b.sha = "def456".into();
        append_run(&dir, &b).unwrap();
        let all = read_history(&dir).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].sha, "abc123");
        assert_eq!(all[1].sha, "def456");
        // NaN != NaN breaks PartialEq on the untimed row; compare the
        // timed rows and keys instead.
        a.records.truncate(1);
        b.records.truncate(1);
        assert_eq!(all[0].records[0], a.records[0]);
        assert_eq!(series_key(&all[1].records[0]), "perf::Gallatin[size=16,wide=on]");
        let _ = fs::remove_dir_all(&dir);
    }
}
