//! The perf-trend lane (E21): per-run wall-clock history, a trend
//! report, and a noise-tolerant regression gate.
//!
//! The count gates (`bench-smoke`, the 64-seed hard-seed sweep) pin the
//! simulator's *work*; this module tracks its *speed*. Four entry
//! points, wired to `repro` subcommands:
//!
//! * [`run_perf`] — run the [`suite`] with repeated samples and append
//!   one `gallatin-perf-v1` line to `results/history/perf_history.jsonl`.
//! * [`run_perf_gate`] — compare the latest appended run against the
//!   rolling same-host baseline band ([`gate`]); exit nonzero on gross
//!   regressions.
//! * [`run_perf_report`] — render `PERF_TREND.md` + `perf_trend.csv`
//!   over the whole history ([`trend`]).
//! * [`run_perf_check`] — schema lint for BENCH JSON files: every
//!   record's `median_ms` must be a number or the explicit `"untimed"`
//!   marker; `null` or a missing field fails loudly (nightly runs this
//!   over `results/`).

pub mod gate;
pub mod history;
pub mod suite;
pub mod trend;

pub use gate::{gate_latest, GateConfig, GateOutcome};
pub use history::{
    append_run, history_path, parse_run, read_history, render_run, series_key, PerfRun,
    HISTORY_FILE, PERF_SCHEMA,
};
pub use suite::{sampled_records, seed_label, DEFAULT_SEEDS};
pub use trend::{render_csv, render_markdown, write_report};

use crate::report::{json, median_field, MedianField};
use std::path::{Path, PathBuf};

/// Options shared by the perf subcommands (filled from `repro` flags;
/// CI passes `--sha`/`--stamp`/`--host` explicitly).
#[derive(Clone, Debug)]
pub struct PerfOptions {
    /// Repeated samples per run; the history stores per-record medians.
    pub samples: usize,
    /// Directory holding `perf_history.jsonl` and the trend report.
    pub history_dir: String,
    /// Rolling-baseline window for the gate.
    pub window: usize,
    /// Git SHA label stamped on appended runs.
    pub sha: String,
    /// Timestamp label stamped on appended runs.
    pub stamp: String,
    /// Host label; the gate only compares equal labels.
    pub host: String,
    /// Schedule seeds for the churn cells.
    pub seeds: Vec<u64>,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            samples: 3,
            history_dir: "results/history".into(),
            window: GateConfig::default().window,
            sha: std::env::var("GITHUB_SHA").unwrap_or_else(|_| "local".into()),
            stamp: unix_stamp(),
            host: std::env::var("PERF_HOST").unwrap_or_else(|_| "local".into()),
            seeds: DEFAULT_SEEDS.collect(),
        }
    }
}

/// Seconds-since-epoch stamp for local runs (CI passes an ISO stamp).
fn unix_stamp() -> String {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => format!("unix-{}", d.as_secs()),
        Err(_) => "unix-0".into(),
    }
}

/// `repro perf`: measure and append one history line.
pub fn run_perf(opts: &PerfOptions) -> bool {
    println!(
        "== perf: {} sample(s), seeds {}, history {} ==",
        opts.samples,
        seed_label(&opts.seeds),
        opts.history_dir
    );
    let records = match sampled_records(opts.samples, &opts.seeds) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf: measurement failed: {e}");
            return false;
        }
    };
    for r in &records {
        println!("  {:<70} {}", series_key(r), crate::report::fmt_ms(r.median_ms));
    }
    let run = PerfRun {
        sha: opts.sha.clone(),
        stamp: opts.stamp.clone(),
        host: opts.host.clone(),
        samples: opts.samples as u32,
        records,
    };
    match append_run(Path::new(&opts.history_dir), &run) {
        Ok(path) => {
            println!(
                "perf: appended run (sha {}, host {}) to {}",
                run.sha,
                run.host,
                path.display()
            );
            true
        }
        Err(e) => {
            eprintln!("perf: could not append history: {e}");
            false
        }
    }
}

/// `repro perf-gate`: gate the latest history line.
pub fn run_perf_gate(opts: &PerfOptions) -> bool {
    let history = match read_history(Path::new(&opts.history_dir)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("perf-gate: {e}");
            return false;
        }
    };
    let cfg = GateConfig { window: opts.window, ..GateConfig::default() };
    let out = gate_latest(&history, &cfg);
    println!(
        "== perf-gate: {} run(s), {} series gated, {} skipped ==",
        history.len(),
        out.gated,
        out.skipped
    );
    for n in &out.notes {
        println!("  note: {n}");
    }
    for f in &out.failures {
        println!("  FAIL: {f}");
    }
    if out.ok() {
        println!("perf-gate: OK");
        true
    } else {
        println!("perf-gate: {} gross regression(s)", out.failures.len());
        false
    }
}

/// `repro perf-report`: write and print the trend report.
pub fn run_perf_report(opts: &PerfOptions) -> bool {
    let dir = Path::new(&opts.history_dir);
    let history = match read_history(dir) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("perf-report: {e}");
            return false;
        }
    };
    print!("{}", render_markdown(&history));
    match write_report(dir, &history) {
        Ok((md, csv)) => {
            println!("\nperf-report: wrote {} and {}", md.display(), csv.display());
            true
        }
        Err(e) => {
            eprintln!("perf-report: could not write report: {e}");
            false
        }
    }
}

/// Expand one `perf-check` argument: a file is itself, a directory is
/// its `BENCH_*.json` files (sorted for stable output).
fn check_targets(path: &Path) -> Vec<PathBuf> {
    if path.is_dir() {
        let mut found: Vec<PathBuf> = std::fs::read_dir(path)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        found.sort();
        found
    } else {
        vec![path.to_path_buf()]
    }
}

/// `repro perf-check`: fail loudly on BENCH JSON records whose
/// `median_ms` is `null` or missing. `"untimed"` is the only legitimate
/// way to spell "this row is deliberately not a timing".
pub fn run_perf_check(paths: &[String]) -> bool {
    let mut files = 0usize;
    let mut rows = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for arg in paths {
        for file in check_targets(Path::new(arg)) {
            let text = match std::fs::read_to_string(&file) {
                Ok(t) => t,
                Err(e) => {
                    failures.push(format!("{}: {e}", file.display()));
                    continue;
                }
            };
            let doc = match json::parse(&text) {
                Ok(d) => d,
                Err(e) => {
                    failures.push(format!("{}: parse error: {e}", file.display()));
                    continue;
                }
            };
            let Some(records) = doc.get("records").and_then(json::Value::as_array) else {
                failures.push(format!("{}: no \"records\" array", file.display()));
                continue;
            };
            files += 1;
            for (i, r) in records.iter().enumerate() {
                rows += 1;
                match median_field(r) {
                    MedianField::Timed | MedianField::Untimed => {}
                    MedianField::Null => failures.push(format!(
                        "{}: record {i}: median_ms is null — time it or mark it \"untimed\"",
                        file.display()
                    )),
                    MedianField::Missing => failures.push(format!(
                        "{}: record {i}: median_ms missing — time it or mark it \"untimed\"",
                        file.display()
                    )),
                }
            }
        }
    }
    println!("== perf-check: {files} file(s), {rows} record(s) ==");
    for f in &failures {
        println!("  FAIL: {f}");
    }
    if failures.is_empty() {
        println!("perf-check: OK");
        true
    } else {
        println!("perf-check: {} violation(s)", failures.len());
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn perf_check_flags_null_and_missing_medians() {
        let dir = std::env::temp_dir().join("gallatin-perf-check-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("BENCH_good.json"),
            r#"{"schema":"gallatin-bench-v1","records":[
                {"experiment":"e","allocator":"a","params":{},"median_ms":1.5,"counts":{}},
                {"experiment":"e","allocator":"a","params":{},"median_ms":"untimed","counts":{}}
            ]}"#,
        )
        .unwrap();
        assert!(run_perf_check(&[dir.to_string_lossy().into_owned()]));
        fs::write(
            dir.join("BENCH_bad.json"),
            r#"{"schema":"gallatin-bench-v1","records":[
                {"experiment":"e","allocator":"a","params":{},"median_ms":null,"counts":{}},
                {"experiment":"e","allocator":"a","params":{},"counts":{}}
            ]}"#,
        )
        .unwrap();
        assert!(!run_perf_check(&[dir.to_string_lossy().into_owned()]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_options_are_sane() {
        let o = PerfOptions::default();
        assert_eq!(o.samples, 3);
        assert_eq!(o.seeds, (0..8).collect::<Vec<u64>>());
        assert!(o.stamp.starts_with("unix-"));
    }
}
