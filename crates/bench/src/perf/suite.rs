//! The perf suite: what `repro perf` actually measures.
//!
//! Five groups of cells, chosen so the wall-clock trajectory covers
//! every layer the speed campaign touches (E21):
//!
//! 1. **Allocator churn** — the E16 churn workload (`churn_once`) at
//!    the slice (16 B) and block (1 KiB) sizes, with wide vEB scans on
//!    and off. The on/off pair is the standing A/B for the
//!    word-parallel-scan optimization: counts must be *identical*
//!    (asserted here — the scan only changes loads), only ms may move.
//! 2. **Pool churn** — the E18 2-instance aggregate (same cell the
//!    count gate pins), timing the sharded path.
//! 3. **Elastic maintenance** — the E22 maintenance cycle via
//!    [`crate::experiments::elastic::perf_record`]: fragment, compact,
//!    donate, shrink, re-adopt on a 2-instance pool. Times the host-side
//!    elasticity path (segment migration + payload copies); the
//!    relocation/donation counts are exact functions of the fixed layout.
//! 4. **Serving** — the E20 smoke subset via
//!    [`crate::experiments::serve::perf_records`], timing the open-loop
//!    engine end to end.
//! 5. **vEB successor microbench** — a dedicated wide-vs-narrow
//!    successor storm on a 2^22 universe. The allocator geometries
//!    above have single-word trees (16–32 segments) where the wide path
//!    cannot fire; this cell isolates the scan kernel itself, with the
//!    narrow row as its permanent control. It is a *guardrail*, not a
//!    victory lap: single-threaded with accurate summaries is the wide
//!    path's worst case (the climb is two hot loads), and the pair of
//!    rows pins that cost in the trend while the churn cells above show
//!    the win under concurrent summary churn.
//!
//! Every cell is deterministic (fixed seeds, deterministic scheduler),
//! so counts must agree bit-for-bit across the run's repeated samples —
//! [`sampled_records`] asserts that and reports per-record median ms.

use crate::experiments::ablation::{churn_once, SWEEP_HEAP, SWEEP_HEAP_BLOCK};
use crate::experiments::{elastic, pool, serve, topo};
use crate::report::BenchRecord;
use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::DeviceAllocator;
use std::time::Instant;
use veb::VebTree;

/// Default schedule seeds for the churn cells (the bench-smoke prefix);
/// override with `repro perf --seeds`.
pub const DEFAULT_SEEDS: std::ops::Range<u64> = 0..8;

/// Universe of the vEB microbench: 64 Ki leaf words (512 KiB of leaf
/// bitmap, 4 levels) — large enough that the summary hierarchy no
/// longer lives in L1, so a narrow climb pays two dependent cache
/// misses per query where the wide path's forward loads stay on one or
/// two prefetched lines.
const VEB_UNIVERSE: u64 = 1 << 22;
/// Member stride: ~32 Ki members, average gap ~2 leaf words, so wide
/// scans usually hit within the near window.
const VEB_STEP: usize = 131;
/// Successor queries per measurement.
const VEB_ROUNDS: u64 = 300_000;

/// One churn cell: the E16 workload over `seeds`, wide scans on/off.
fn churn_cell(size: u64, wide: bool, seeds: &[u64]) -> BenchRecord {
    let heap = if size > 256 { SWEEP_HEAP_BLOCK } else { SWEEP_HEAP };
    let (mut cas_attempts, mut cas_failures, mut atomic_rmw, mut ms) = (0u64, 0u64, 0u64, 0f64);
    for &seed in seeds {
        let g = Gallatin::new(GallatinConfig {
            randomize_probe_starts: true,
            wide_veb_scans: wide,
            ..GallatinConfig::small_test(heap)
        });
        let t0 = Instant::now();
        churn_once(&g, seed, size);
        ms += t0.elapsed().as_secs_f64() * 1e3;
        g.check_invariants().expect("invariants after perf churn");
        let m = g.metrics().expect("gallatin keeps metrics").snapshot();
        cas_attempts += m.cas_attempts;
        cas_failures += m.cas_failures;
        atomic_rmw += m.atomic_rmw;
    }
    BenchRecord {
        experiment: "perf".into(),
        allocator: "Gallatin".into(),
        params: vec![
            ("case".into(), "churn".into()),
            ("size".into(), size.to_string()),
            ("wide_veb_scans".into(), if wide { "on" } else { "off" }.into()),
            ("seeds".into(), seed_label(seeds)),
        ],
        median_ms: ms,
        counts: vec![
            ("cas_attempts".into(), cas_attempts),
            ("cas_failures".into(), cas_failures),
            ("atomic_rmw".into(), atomic_rmw),
        ],
    }
}

/// Stable label for a seed list (part of the series key).
pub fn seed_label(seeds: &[u64]) -> String {
    let contiguous = seeds.windows(2).all(|w| w[1] == w[0] + 1);
    match (seeds.first(), seeds.last()) {
        (Some(&a), Some(&b)) if contiguous => format!("{a}..{}", b + 1),
        _ => seeds.iter().map(u64::to_string).collect::<Vec<_>>().join("+"),
    }
}

/// One vEB successor-storm measurement. Returns `(checksum, members,
/// ms)`; the checksum folds every query result, so wide and narrow runs
/// returning it equal is a full behavioral parity check.
fn veb_storm(wide: bool) -> (u64, u64, f64) {
    let t = if wide { VebTree::new_wide(VEB_UNIVERSE) } else { VebTree::new(VEB_UNIVERSE) };
    for i in (0..VEB_UNIVERSE).step_by(VEB_STEP) {
        t.insert(i);
    }
    let members = t.count();
    let mut checksum = 0u64;
    let mut x = 0u64;
    let t0 = Instant::now();
    for round in 0..VEB_ROUNDS {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(round | 1) % VEB_UNIVERSE;
        if let Some(v) = t.find_first_from(x) {
            checksum = checksum.wrapping_mul(31).wrapping_add(v);
        }
    }
    (checksum, members, t0.elapsed().as_secs_f64() * 1e3)
}

fn veb_cell(wide: bool) -> BenchRecord {
    let (checksum, members, ms) = veb_storm(wide);
    BenchRecord {
        experiment: "perf".into(),
        allocator: "VebTree".into(),
        params: vec![
            ("case".into(), "veb-succ".into()),
            ("universe".into(), VEB_UNIVERSE.to_string()),
            ("rounds".into(), VEB_ROUNDS.to_string()),
            ("wide_veb_scans".into(), if wide { "on" } else { "off" }.into()),
        ],
        median_ms: ms,
        counts: vec![("checksum".into(), checksum), ("members".into(), members)],
    }
}

/// One full pass over the suite. Returns the records plus the serving
/// clean flag (quota/ledger audit — a dirty serve run must not be
/// silently recorded as a timing).
fn collect_once(seeds: &[u64]) -> (Vec<BenchRecord>, bool) {
    let mut records = Vec::new();
    for size in [16u64, 1024] {
        for wide in [true, false] {
            records.push(churn_cell(size, wide, seeds));
        }
    }
    // Wide scans change loads only: the A/B pair must agree on counts.
    for pair in records.chunks(2) {
        assert_eq!(
            pair[0].counts, pair[1].counts,
            "wide vEB scans must not change atomic-op counts"
        );
    }
    records.extend(pool::pool_smoke_records("perf"));
    records.push(elastic::perf_record());
    records.push(topo::perf_record());
    let (serve_recs, clean) = serve::perf_records();
    records.extend(serve_recs);
    let wide = veb_cell(true);
    let narrow = veb_cell(false);
    assert_eq!(wide.counts, narrow.counts, "wide and narrow successor storms must agree");
    records.push(wide);
    records.push(narrow);
    (records, clean)
}

/// Run the suite `samples` times, check counts agree bit-for-bit across
/// samples, and return one record per cell with the median ms.
pub fn sampled_records(samples: usize, seeds: &[u64]) -> Result<Vec<BenchRecord>, String> {
    let samples = samples.max(1);
    let mut passes: Vec<Vec<BenchRecord>> = Vec::with_capacity(samples);
    for s in 0..samples {
        let t0 = Instant::now();
        let (records, clean) = collect_once(seeds);
        if !clean {
            return Err(format!("sample {s}: serving cells reported quota/ledger anomalies"));
        }
        println!(
            "# perf sample {}/{samples}: {} records in {:.1}s",
            s + 1,
            records.len(),
            t0.elapsed().as_secs_f64()
        );
        passes.push(records);
    }
    let mut out = Vec::with_capacity(passes[0].len());
    for i in 0..passes[0].len() {
        let first = &passes[0][i];
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for p in &passes {
            let r = &p[i];
            if r.key() != first.key() || r.experiment != first.experiment {
                return Err(format!("sample records diverged: {} vs {}", r.key(), first.key()));
            }
            if r.counts != first.counts {
                return Err(format!(
                    "counts diverged across samples for {} — the suite must be deterministic",
                    first.key()
                ));
            }
            times.push(r.median_ms);
        }
        let median_ms = if times.iter().all(|t| t.is_finite()) {
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            times[times.len() / 2]
        } else {
            f64::NAN
        };
        out.push(BenchRecord { median_ms, ..first.clone() });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_labels_are_stable() {
        assert_eq!(seed_label(&[0, 1, 2, 3]), "0..4");
        assert_eq!(seed_label(&[5]), "5..6");
        assert_eq!(seed_label(&[2, 5, 9]), "2+5+9");
        assert_eq!(seed_label(&[]), "");
    }

    #[test]
    fn veb_storm_is_deterministic_and_parity_checked() {
        let (c1, m1, _) = veb_storm(true);
        let (c2, m2, _) = veb_storm(false);
        assert_eq!(c1, c2, "wide and narrow storms must return identical successors");
        assert_eq!(m1, m2);
        let (c3, _, _) = veb_storm(true);
        assert_eq!(c1, c3, "storm must be deterministic");
    }
}
