//! The noise-tolerant wall-clock regression gate (`repro perf-gate`).
//!
//! Counts are exact functions of the schedule seed, so the bench-smoke
//! gate can fail on a 10% drift. Wall time is not: even on one host it
//! jitters with cache state, frequency scaling, and co-tenants. The
//! perf gate therefore compares the latest run's medians against a
//! **rolling baseline band** derived from the same series' history:
//!
//! * baseline = median of the last [`GateConfig::window`] prior medians
//!   from runs with the *same host label* (cross-host timing is not
//!   comparable and is never gated);
//! * tolerance = max(relative band, MAD multiple, absolute floor) — the
//!   MAD (median absolute deviation) term widens the band for series
//!   that are empirically noisy, the relative/absolute floors keep it
//!   from collapsing to zero on perfectly stable series;
//! * rows whose baseline sits under [`GateConfig::min_floor_ms`] are
//!   skipped (microsecond rows flap on scheduler noise alone), as are
//!   `"untimed"` rows (by schema) and series with fewer than
//!   [`GateConfig::min_prior_runs`] prior same-host runs (no band to
//!   speak of yet — the gate reports them and stays green).
//!
//! A gross regression — current median above baseline + tolerance —
//! fails the gate. Gross *improvements* are reported as notes so a
//! too-good-to-be-true run (wrong sample count, dead code) is visible.

use super::history::{series_key, PerfRun};

/// Tunables of the rolling band.
#[derive(Clone, Debug)]
pub struct GateConfig {
    /// Prior runs (per series, same host) the baseline band is built
    /// over.
    pub window: usize,
    /// Minimum prior same-host runs before a series is gated at all.
    pub min_prior_runs: usize,
    /// Series whose baseline median is below this are never gated.
    pub min_floor_ms: f64,
    /// Relative half-width of the band: baseline × this.
    pub rel_band: f64,
    /// MAD multiplier: band also covers mad × this.
    pub mad_mult: f64,
    /// Absolute half-width floor, milliseconds.
    pub abs_band_ms: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            window: 10,
            min_prior_runs: 2,
            min_floor_ms: 5.0,
            rel_band: 0.35,
            mad_mult: 5.0,
            abs_band_ms: 2.0,
        }
    }
}

/// What the gate decided.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Hard failures: series whose current median left the band upward.
    pub failures: Vec<String>,
    /// Informational notes (skips, improvements, thin history).
    pub notes: Vec<String>,
    /// Series actually compared against a band.
    pub gated: usize,
    /// Series skipped (untimed / under floor / thin history).
    pub skipped: usize,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Median of a non-empty slice (upper median for even lengths — bias
/// toward the slower sample, i.e. the stricter baseline).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("medians are finite"));
    xs[xs.len() / 2]
}

/// Gate the last run of `history` against the band built from the runs
/// before it. An empty history (or one with no prior same-host runs at
/// all) passes with a note — the first run on a fresh host *creates*
/// the baseline.
pub fn gate_latest(history: &[PerfRun], cfg: &GateConfig) -> GateOutcome {
    let mut out = GateOutcome::default();
    let Some((current, prior)) = history.split_last() else {
        out.notes.push("history is empty: nothing to gate".into());
        return out;
    };
    let prior: Vec<&PerfRun> = prior.iter().filter(|r| r.host == current.host).collect();
    if prior.is_empty() {
        out.notes.push(format!(
            "no prior runs for host {:?}: baseline created, nothing gated",
            current.host
        ));
    }
    for rec in &current.records {
        let key = series_key(rec);
        if !rec.median_ms.is_finite() {
            out.skipped += 1;
            continue; // untimed by schema
        }
        let mut series: Vec<f64> = prior
            .iter()
            .flat_map(|r| &r.records)
            .filter(|r| series_key(r) == key)
            .map(|r| r.median_ms)
            .filter(|m| m.is_finite())
            .collect();
        let window_start = series.len().saturating_sub(cfg.window);
        let series = &mut series[window_start..];
        if series.len() < cfg.min_prior_runs {
            out.skipped += 1;
            out.notes.push(format!(
                "{key}: only {} prior same-host run(s) (< {}), not gated",
                series.len(),
                cfg.min_prior_runs
            ));
            continue;
        }
        let baseline = median(series);
        if baseline < cfg.min_floor_ms {
            out.skipped += 1;
            out.notes.push(format!(
                "{key}: baseline {baseline:.3} ms under the {:.1} ms floor, not gated",
                cfg.min_floor_ms
            ));
            continue;
        }
        let mut devs: Vec<f64> = series.iter().map(|x| (x - baseline).abs()).collect();
        let mad = median(&mut devs);
        let band = (baseline * cfg.rel_band).max(mad * cfg.mad_mult).max(cfg.abs_band_ms);
        out.gated += 1;
        let cur = rec.median_ms;
        if cur > baseline + band {
            out.failures.push(format!(
                "{key}: {cur:.1} ms vs baseline {baseline:.1} ms (+{:.0}%, band ±{band:.1} ms over {} run(s))",
                100.0 * (cur - baseline) / baseline,
                series.len()
            ));
        } else if cur < baseline - band {
            out.notes.push(format!(
                "{key}: {cur:.1} ms vs baseline {baseline:.1} ms ({:.0}%) — large improvement, verify it is real",
                100.0 * (cur - baseline) / baseline
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::BenchRecord;

    fn rec(ms: f64) -> BenchRecord {
        BenchRecord {
            experiment: "perf".into(),
            allocator: "Gallatin".into(),
            params: vec![("size".into(), "1024".into())],
            median_ms: ms,
            counts: vec![("cas_attempts".into(), 100)],
        }
    }

    fn run(host: &str, ms: f64) -> PerfRun {
        PerfRun {
            sha: "sha".into(),
            stamp: "stamp".into(),
            host: host.into(),
            samples: 3,
            records: vec![rec(ms)],
        }
    }

    #[test]
    fn planted_regression_trips_the_gate() {
        // Stable ~100 ms series, then a +50% run: must fail.
        let mut h: Vec<PerfRun> =
            [99.0, 101.0, 100.0, 100.5].iter().map(|&m| run("ci", m)).collect();
        h.push(run("ci", 150.0));
        let out = gate_latest(&h, &GateConfig::default());
        assert!(!out.ok(), "+50% must trip: {:?}", out.notes);
        assert!(out.failures[0].contains("perf::Gallatin[size=1024]"));
        assert_eq!(out.gated, 1);
    }

    #[test]
    fn inside_band_stays_green() {
        // +20% sits inside the 35% relative band.
        let mut h: Vec<PerfRun> =
            [99.0, 101.0, 100.0, 100.5].iter().map(|&m| run("ci", m)).collect();
        h.push(run("ci", 120.0));
        let out = gate_latest(&h, &GateConfig::default());
        assert!(out.ok(), "{:?}", out.failures);
        assert_eq!(out.gated, 1);
    }

    #[test]
    fn noisy_series_widens_its_band() {
        // Series with MAD ~20 ms around 100: a 190 ms run stays green
        // (mad_mult 5 ⇒ band ~100 ms), where a stable series would trip.
        let mut h: Vec<PerfRun> =
            [80.0, 120.0, 100.0, 78.0, 122.0].iter().map(|&m| run("ci", m)).collect();
        h.push(run("ci", 190.0));
        let out = gate_latest(&h, &GateConfig::default());
        assert!(out.ok(), "{:?}", out.failures);
    }

    #[test]
    fn microsecond_rows_never_flap() {
        // Baseline 0.5 ms: even a 10× run is skipped by the floor.
        let mut h: Vec<PerfRun> = [0.5, 0.52, 0.48].iter().map(|&m| run("ci", m)).collect();
        h.push(run("ci", 5.0));
        let out = gate_latest(&h, &GateConfig::default());
        assert!(out.ok());
        assert_eq!(out.gated, 0);
        assert_eq!(out.skipped, 1);
        assert!(out.notes.iter().any(|n| n.contains("floor")));
    }

    #[test]
    fn cross_host_history_is_not_compared() {
        // Prior runs from a slower host: the fast host's first run must
        // not be flagged (or gated at all).
        let mut h: Vec<PerfRun> = [500.0, 505.0, 498.0].iter().map(|&m| run("laptop", m)).collect();
        h.push(run("ci", 100.0));
        let out = gate_latest(&h, &GateConfig::default());
        assert!(out.ok());
        assert_eq!(out.gated, 0);
        assert!(out.notes.iter().any(|n| n.contains("no prior runs")));
    }

    #[test]
    fn untimed_rows_are_skipped_by_schema() {
        let mut h: Vec<PerfRun> = [100.0, 101.0].iter().map(|&m| run("ci", m)).collect();
        let mut last = run("ci", f64::NAN);
        last.records.push(rec(100.5)); // the timed row still gates
        h.push(last);
        let out = gate_latest(&h, &GateConfig::default());
        assert!(out.ok());
        assert_eq!(out.skipped, 1);
        assert_eq!(out.gated, 1);
    }

    #[test]
    fn empty_history_and_fresh_series_pass() {
        assert!(gate_latest(&[], &GateConfig::default()).ok());
        let h = [run("ci", 100.0)];
        let out = gate_latest(&h, &GateConfig::default());
        assert!(out.ok());
        assert_eq!(out.gated, 0);
    }
}
