//! The allocator roster benchmarked by every experiment.

use allocators::all_baselines;
use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::DeviceAllocator;
use std::sync::Arc;

/// Gallatin configured for the harness's heap and SM count.
pub fn gallatin(heap_bytes: u64, num_sms: u32) -> Gallatin {
    Gallatin::new(GallatinConfig { heap_bytes, num_sms, ..GallatinConfig::default() })
}

/// The full roster: Gallatin first, then every survey baseline, in the
/// order the paper's figures list them.
pub fn full_roster(heap_bytes: u64, num_sms: u32) -> Vec<Arc<dyn DeviceAllocator>> {
    // Gallatin's heap must be segment-aligned.
    let gall_heap = heap_bytes / (16 << 20) * (16 << 20);
    let gall_heap = if gall_heap == 0 { 16 << 20 } else { gall_heap };
    let mut v: Vec<Arc<dyn DeviceAllocator>> = vec![Arc::new(gallatin(gall_heap, num_sms))];
    v.extend(all_baselines(heap_bytes));
    v
}

/// The display names of the full roster, in figure order, without
/// constructing any allocator.
pub fn roster_names() -> Vec<&'static str> {
    vec![
        "Gallatin",
        "CUDA",
        "Ouroboros-C-S",
        "Ouroboros-C-VA",
        "Ouroboros-C-VL",
        "Ouroboros-P-S",
        "Ouroboros-P-VA",
        "Ouroboros-P-VL",
        "RegEff-A",
        "RegEff-AW",
        "RegEff-C",
        "RegEff-CF",
        "RegEff-CM",
        "RegEff-CFM",
        "ScatterAlloc",
        "XMalloc",
    ]
}

/// Iterate the roster **one allocator at a time**: each is constructed,
/// passed to `f`, and dropped (unmapping its arena) before the next is
/// built. The timing experiments use this instead of holding the whole
/// roster because 16 concurrently resident heaps exceed small hosts'
/// RAM once their pages are touched.
pub fn for_each_allocator(
    heap_bytes: u64,
    num_sms: u32,
    mut f: impl FnMut(usize, &dyn DeviceAllocator),
) {
    for (i, name) in roster_names().into_iter().enumerate() {
        let a = build_by_name(name, heap_bytes, num_sms).expect("known roster name");
        f(i, a.as_ref());
        drop(a);
    }
}

/// The roster for the graph *expansion* test: identical to
/// [`full_roster`], except the Ouroboros variants carry a CUDA-heap
/// reserve scaled the way the paper describes deployed allocators
/// (≈50 MB beside an 8 GB benchmark heap, i.e. under 1% — `heap/256`
/// here). With the default quarter-heap reserve the scaled-down workload
/// could never overflow it, and the experiment would lose the failure
/// mode it exists to show (§6.12: skewed hub edge lists outgrow the
/// fixed reserve).
pub fn expansion_roster(heap_bytes: u64, num_sms: u32) -> Vec<Arc<dyn DeviceAllocator>> {
    use allocators::{Ouroboros, OuroborosKind, QueueKind};
    let reserve = (heap_bytes / 256).max(1 << 20);
    full_roster(heap_bytes, num_sms)
        .into_iter()
        .map(|a| -> Arc<dyn DeviceAllocator> {
            if a.name().starts_with("Ouroboros-") {
                let kind = if a.name().contains("-C-") {
                    OuroborosKind::Chunk
                } else {
                    OuroborosKind::Page
                };
                let queue = if a.name().ends_with("-VA") {
                    QueueKind::VirtArray
                } else if a.name().ends_with("-VL") {
                    QueueKind::VirtList
                } else {
                    QueueKind::Static
                };
                Arc::new(Ouroboros::with_reserve(heap_bytes, kind, queue, reserve))
            } else {
                a
            }
        })
        .collect()
}

/// Construct a single allocator by its display name (used by the init
/// benchmark to time construction individually).
pub fn build_by_name(
    name: &str,
    heap_bytes: u64,
    num_sms: u32,
) -> Option<Arc<dyn DeviceAllocator>> {
    use allocators::{
        CudaHeapSim, Ouroboros, OuroborosKind, QueueKind, RegEff, RegEffVariant, ScatterAlloc,
        XMalloc,
    };
    let a: Arc<dyn DeviceAllocator> = match name {
        "Gallatin" => {
            let gall_heap = (heap_bytes / (16 << 20) * (16 << 20)).max(16 << 20);
            Arc::new(gallatin(gall_heap, num_sms))
        }
        "CUDA" => Arc::new(CudaHeapSim::new(heap_bytes)),
        "ScatterAlloc" => Arc::new(ScatterAlloc::new(heap_bytes)),
        "XMalloc" => Arc::new(XMalloc::new(heap_bytes)),
        n if n.starts_with("Ouroboros-") => {
            let kind = if n.contains("-C-") { OuroborosKind::Chunk } else { OuroborosKind::Page };
            let queue = if n.ends_with("-VA") {
                QueueKind::VirtArray
            } else if n.ends_with("-VL") {
                QueueKind::VirtList
            } else {
                QueueKind::Static
            };
            Arc::new(Ouroboros::new(heap_bytes, kind, queue))
        }
        n if n.starts_with("RegEff-") => {
            let variant = match n {
                "RegEff-A" => RegEffVariant::A,
                "RegEff-AW" => RegEffVariant::AW,
                "RegEff-C" => RegEffVariant::C,
                "RegEff-CF" => RegEffVariant::CF,
                "RegEff-CM" => RegEffVariant::CM,
                "RegEff-CFM" => RegEffVariant::CFM,
                _ => return None,
            };
            Arc::new(RegEff::new(heap_bytes, variant))
        }
        _ => return None,
    };
    Some(a)
}

/// A reduced roster for quick runs: Gallatin plus one representative of
/// each design family.
pub fn quick_roster(heap_bytes: u64, num_sms: u32) -> Vec<Arc<dyn DeviceAllocator>> {
    full_roster(heap_bytes, num_sms)
        .into_iter()
        .filter(|a| {
            matches!(
                a.name(),
                "Gallatin"
                    | "CUDA"
                    | "Ouroboros-P-VA"
                    | "Ouroboros-C-S"
                    | "RegEff-CFM"
                    | "RegEff-AW"
                    | "ScatterAlloc"
                    | "XMalloc"
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_roster_has_gallatin_and_all_baselines() {
        let r = full_roster(64 << 20, 16);
        assert_eq!(r.len(), 16);
        assert_eq!(r[0].name(), "Gallatin");
    }

    #[test]
    fn quick_roster_is_a_subset() {
        let q = quick_roster(64 << 20, 16);
        assert_eq!(q.len(), 8);
        assert_eq!(q[0].name(), "Gallatin");
    }
}
