//! The [`WorkloadSource`] trait and the trace-replayer source.

use gpu_sim::replay::{ConversionStats, ReplayScript};
use gpu_sim::TraceRecord;

/// Anything that can produce a per-warp allocation script for a seed.
///
/// Scripts must be **deterministic in the seed**: `script(s)` called
/// twice returns identical scripts, so a failing `(scenario, seed)`
/// pair replays exactly (combined with `GALLATIN_SCHED_SEED=<seed>` for
/// the schedule half, see TESTING.md).
pub trait WorkloadSource {
    /// Display name, used in test output and dump filenames.
    fn name(&self) -> &str;

    /// Build the workload for `seed`. Generators derive sizes and
    /// shapes from the seed; fixed sources (a recorded trace) ignore it.
    fn script(&self, seed: u64) -> ReplayScript;
}

/// A [`WorkloadSource`] that re-issues a recorded workload: either a
/// trace captured by [`gpu_sim::TraceSink`] (converted through
/// [`ReplayScript::from_trace`]) or a `gallatin-replay-v1` text file.
/// The script is fixed; the seed only varies the replay schedule.
pub struct TraceReplayer {
    name: String,
    script: ReplayScript,
}

impl TraceReplayer {
    /// Wrap an already-built script.
    pub fn new(name: impl Into<String>, script: ReplayScript) -> Self {
        TraceReplayer { name: name.into(), script }
    }

    /// Convert a recorded trace into a replayer targeting a
    /// `num_sms`-wide device. Returns the conversion stats so callers
    /// can assert how faithful the reduction was (e.g. no frees dropped).
    pub fn from_records(
        name: impl Into<String>,
        records: &[TraceRecord],
        num_sms: u32,
    ) -> (Self, ConversionStats) {
        let (script, stats) = ReplayScript::from_trace(records, num_sms);
        (TraceReplayer::new(name, script), stats)
    }

    /// Parse a `gallatin-replay-v1` text script (see
    /// [`gpu_sim::replay`] for the schema).
    pub fn from_text(name: impl Into<String>, text: &str) -> Result<Self, String> {
        Ok(TraceReplayer::new(name, ReplayScript::parse(text)?))
    }

    /// The wrapped script.
    pub fn script_ref(&self) -> &ReplayScript {
        &self.script
    }
}

impl WorkloadSource for TraceReplayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn script(&self, _seed: u64) -> ReplayScript {
        self.script.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replayer_is_seed_invariant() {
        let text = "# gallatin-replay-v1 sms=4 warps=1\nm 0 0 0 64\nf 0 0 0\n";
        let r = TraceReplayer::from_text("unit", text).unwrap();
        assert_eq!(r.name(), "unit");
        assert_eq!(r.script(0), r.script(99));
        assert_eq!(r.script(0).total_ops(), 2);
    }
}
