//! Benchmark kernels and the median-of-N measurement protocol.
//!
//! Every timing experiment follows the survey protocol as amended by the
//! paper (§6.1): a run allocates with one kernel, validates payloads,
//! frees with a second kernel, and *the allocator is reset between runs*
//! so each run measures cold-state behaviour; the reported figure is the
//! median over runs. Warmed-up mode (§6.9) skips the reset and discards
//! the first run.

use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How per-thread request sizes are chosen.
#[derive(Clone, Copy, Debug)]
pub enum SizeSpec {
    /// Every thread requests the same size (single-size tests).
    Fixed(u64),
    /// Thread sizes are power-of-two sizes drawn deterministically from
    /// `[16, upper]` (mixed-size tests).
    MixedUpTo(u64),
}

impl SizeSpec {
    /// The size thread `tid` requests.
    #[inline]
    pub fn size_for(self, tid: u64) -> u64 {
        match self {
            SizeSpec::Fixed(s) => s,
            SizeSpec::MixedUpTo(upper) => {
                let lo = 4; // log2(16)
                let hi = 63 - upper.leading_zeros() as u64;
                // SplitMix-style hash keeps the draw deterministic and
                // identical across allocators.
                let mut x = tid.wrapping_add(0x9e37_79b9_7f4a_7c15);
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x ^= x >> 31;
                1 << (lo + x % (hi - lo + 1))
            }
        }
    }

    /// Largest size the spec can request.
    pub fn max_size(self) -> u64 {
        match self {
            SizeSpec::Fixed(s) => s,
            SizeSpec::MixedUpTo(u) => u,
        }
    }
}

/// Result of one allocate→validate→free run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunResult {
    /// Wall time of the allocation kernel, milliseconds.
    pub alloc_ms: f64,
    /// Wall time of the free kernel, milliseconds.
    pub free_ms: f64,
    /// Requests that returned null.
    pub failed: u64,
    /// Payload validation failures (overlapping allocations).
    pub corrupt: u64,
    /// Lowest address handed out (fragmentation metric input).
    pub min_addr: u64,
    /// Highest `address + size` handed out.
    pub max_addr: u64,
}

/// Run one allocate→validate→free cycle of `threads` requests on `alloc`.
///
/// Allocation and free are separate kernels (as in the survey harness) so
/// they can be timed independently; pointers live in a host-side table
/// between the two, standing in for the device array the survey uses.
pub fn run_alloc_free(
    alloc: &dyn DeviceAllocator,
    device: DeviceConfig,
    threads: u64,
    sizes: SizeSpec,
    validate: bool,
) -> RunResult {
    let ptrs: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(DevicePtr::NULL.0)).collect();
    let failed = AtomicU64::new(0);
    let corrupt = AtomicU64::new(0);
    let min_addr = AtomicU64::new(u64::MAX);
    let max_addr = AtomicU64::new(0);

    // --- allocation kernel ---
    let t0 = Instant::now();
    launch_warps(device, threads, |warp| {
        let n = warp.active as usize;
        let req: Vec<Option<u64>> =
            (0..n).map(|l| Some(sizes.size_for(warp.base_tid + l as u64))).collect();
        let mut out = vec![DevicePtr::NULL; n];
        alloc.warp_malloc(warp, &req, &mut out);
        for (l, p) in out.iter().enumerate() {
            let tid = warp.base_tid + l as u64;
            if p.is_null() {
                failed.fetch_add(1, Ordering::Relaxed);
            } else {
                ptrs[tid as usize].store(p.0, Ordering::Relaxed);
                alloc.memory().write_stamp(*p, tid ^ 0xa11c);
            }
        }
    });
    let alloc_ms = t0.elapsed().as_secs_f64() * 1e3;

    // --- validation (untimed, survey-style correctness check) ---
    if validate {
        launch_warps(device, threads, |warp| {
            for l in warp.lanes() {
                let tid = warp.base_tid + l as u64;
                let raw = ptrs[tid as usize].load(Ordering::Relaxed);
                if raw != DevicePtr::NULL.0 {
                    let p = DevicePtr(raw);
                    if alloc.memory().read_stamp(p) != tid ^ 0xa11c {
                        corrupt.fetch_add(1, Ordering::Relaxed);
                    }
                    min_addr.fetch_min(raw, Ordering::Relaxed);
                    max_addr.fetch_max(raw + sizes.size_for(tid), Ordering::Relaxed);
                }
            }
        });
    }

    // --- free kernel ---
    let t1 = Instant::now();
    launch_warps(device, threads, |warp| {
        let n = warp.active as usize;
        let batch: Vec<DevicePtr> = (0..n)
            .map(|l| DevicePtr(ptrs[(warp.base_tid + l as u64) as usize].load(Ordering::Relaxed)))
            .collect();
        alloc.warp_free(warp, &batch);
    });
    let free_ms = t1.elapsed().as_secs_f64() * 1e3;

    RunResult {
        alloc_ms,
        free_ms,
        failed: failed.load(Ordering::Relaxed),
        corrupt: corrupt.load(Ordering::Relaxed),
        min_addr: min_addr.load(Ordering::Relaxed),
        max_addr: max_addr.load(Ordering::Relaxed),
    }
}

/// Aggregated measurement over `runs` repetitions.
#[derive(Clone, Debug, Default)]
pub struct Measurement {
    pub alloc_ms: Vec<f64>,
    pub free_ms: Vec<f64>,
    pub failed: u64,
    pub corrupt: u64,
    pub min_addr: u64,
    pub max_addr: u64,
}

impl Measurement {
    pub fn median_alloc_ms(&self) -> f64 {
        median(&self.alloc_ms)
    }

    pub fn median_free_ms(&self) -> f64 {
        median(&self.free_ms)
    }

    pub fn alloc_variance(&self) -> f64 {
        variance(&self.alloc_ms)
    }

    pub fn free_variance(&self) -> f64 {
        variance(&self.free_ms)
    }
}

/// Median of a sample (empty → NaN).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Sample variance (n−1 denominator; < 2 samples → 0).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64
}

/// The full protocol: `runs` repetitions of [`run_alloc_free`], resetting
/// the allocator between runs (cold mode) or never (warmed mode, first
/// run discarded).
pub fn measure(
    alloc: &dyn DeviceAllocator,
    device: DeviceConfig,
    threads: u64,
    sizes: SizeSpec,
    runs: usize,
    warmed: bool,
) -> Measurement {
    let mut m = Measurement { min_addr: u64::MAX, ..Default::default() };
    alloc.reset();
    if warmed {
        // Warm-up round, not recorded.
        let _ = run_alloc_free(alloc, device, threads, sizes, false);
    }
    for _ in 0..runs {
        if !warmed {
            alloc.reset();
        }
        let r = run_alloc_free(alloc, device, threads, sizes, true);
        m.alloc_ms.push(r.alloc_ms);
        m.free_ms.push(r.free_ms);
        m.failed += r.failed;
        m.corrupt += r.corrupt;
        m.min_addr = m.min_addr.min(r.min_addr);
        m.max_addr = m.max_addr.max(r.max_addr);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::gallatin;

    #[test]
    fn size_spec_fixed_and_mixed() {
        assert_eq!(SizeSpec::Fixed(64).size_for(123), 64);
        let spec = SizeSpec::MixedUpTo(4096);
        for tid in 0..1000 {
            let s = spec.size_for(tid);
            assert!(s.is_power_of_two());
            assert!((16..=4096).contains(&s), "{s}");
        }
        // Deterministic.
        assert_eq!(spec.size_for(42), spec.size_for(42));
        // Actually mixed.
        let distinct: std::collections::HashSet<u64> =
            (0..1000).map(|t| spec.size_for(t)).collect();
        assert!(distinct.len() >= 5);
    }

    #[test]
    fn median_and_variance_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn protocol_runs_clean_on_gallatin() {
        let a = gallatin(64 << 20, 8);
        let m =
            measure(&a, gpu_sim::DeviceConfig::with_sms(8), 2048, SizeSpec::Fixed(64), 3, false);
        assert_eq!(m.alloc_ms.len(), 3);
        assert_eq!(m.failed, 0, "no failures expected");
        assert_eq!(m.corrupt, 0, "no overlapping allocations");
        assert!(m.median_alloc_ms() > 0.0);
        assert!(m.max_addr > m.min_addr);
    }

    #[test]
    fn warmed_mode_skips_reset() {
        let a = gallatin(64 << 20, 8);
        let m = measure(
            &a,
            gpu_sim::DeviceConfig::with_sms(8),
            1024,
            SizeSpec::MixedUpTo(256),
            2,
            true,
        );
        assert_eq!(m.alloc_ms.len(), 2);
        assert_eq!(m.corrupt, 0);
    }
}
