//! Execute a [`ReplayScript`] against any allocator, reducing the run
//! to a diffable [`ScriptOutcome`].
//!
//! The runner enforces the same contract discipline as the differential
//! sweep: every served pointer is bounds-checked and stamped, every
//! stamp is verified immediately before its free (a clobbered stamp
//! means two live allocations overlapped), and whatever is still
//! reserved after the launch counts as leaked. Violations are *counted*,
//! not asserted, so differing allocator families produce comparable
//! outcomes instead of differently-located panics.
//!
//! In collective mode (the default for sweeps) consecutive same-kind
//! ops on distinct lanes are batched into one `warp_malloc`/`warp_free`
//! call, exercising the coalescing path exactly like a SIMT kernel
//! would. Scalar mode issues one op at a time in strict script order,
//! which is what makes trace round-trips order-exact (see the
//! `script_fixpoint` test).

use gpu_sim::replay::{ReplayOp, ReplayScript};
use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr, WARP_SIZE};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Where failing scenario scripts are dumped for artifact upload
/// (default `target/replay`), mirroring `GALLATIN_TRACE_DIR` for traces.
pub const REPLAY_DIR_ENV: &str = "GALLATIN_REPLAY_DIR";

/// Everything observable about one allocator's run of a script, reduced
/// to counters so runs can be diffed exactly across families.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScriptOutcome {
    /// Malloc ops issued by the script.
    pub attempted: u64,
    /// Requests that returned a pointer.
    pub served: u64,
    /// Requests refused: unsupported size or NULL (exhaustion).
    pub denied: u64,
    /// Stamp clobbers observed — two live allocations overlapped.
    pub overlaps: u64,
    /// Pointers handed out beyond the heap end.
    pub oob: u64,
    /// Bytes still reserved after the script completed.
    pub leaked_bytes: u64,
}

impl ScriptOutcome {
    /// The contract projection: counters that must be zero for every
    /// correct allocator regardless of its allocation policy.
    pub fn violations(&self) -> (u64, u64, u64) {
        (self.overlaps, self.oob, self.leaked_bytes)
    }
}

/// Per-warp slot table: pointer, request size, and whether the payload
/// was stamped (out-of-bounds pointers are never stamped or verified).
type Slot = (DevicePtr, u64, bool);

/// A warp-unique stamp per slot; a surviving stamp proves no other live
/// allocation overlapped this one.
fn stamp_of(warp_id: u64, slot: u32) -> u64 {
    (warp_id << 32) | (slot as u64 + 1)
}

/// Run `script` on `a` under `device` and reduce the run to a
/// [`ScriptOutcome`]. `collective` batches consecutive distinct-lane
/// same-kind ops into warp collectives; scalar mode preserves strict
/// per-warp op order. Does not reset the allocator — callers own its
/// lifecycle (and leaks are part of the outcome).
pub fn run_script(
    a: &dyn DeviceAllocator,
    device: DeviceConfig,
    script: &ReplayScript,
    collective: bool,
) -> ScriptOutcome {
    let attempted = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    let denied = AtomicU64::new(0);
    let overlaps = AtomicU64::new(0);
    let oob = AtomicU64::new(0);
    let heap = a.heap_bytes();
    launch_warps(device, script.num_warps() * WARP_SIZE as u64, |warp| {
        let ops = &script.warps[warp.warp_id as usize].ops;
        let mut slots: Vec<Slot> = Vec::new();
        let slot_at = |slots: &mut Vec<Slot>, s: u32| {
            if slots.len() <= s as usize {
                slots.resize(s as usize + 1, (DevicePtr::NULL, 0, false));
            }
        };
        // One pending collective batch; `None` lane entries sit out.
        let mut batch_sizes: Vec<Option<u64>> = vec![None; WARP_SIZE];
        let mut batch_ptrs: Vec<DevicePtr> = vec![DevicePtr::NULL; WARP_SIZE];
        let mut batch_slots: Vec<Option<u32>> = vec![None; WARP_SIZE];
        let mut pending_mallocs = 0usize;
        let mut pending_frees = 0usize;

        macro_rules! flush_mallocs {
            () => {
                if pending_mallocs > 0 {
                    let mut out = vec![DevicePtr::NULL; WARP_SIZE];
                    a.warp_malloc(warp, &batch_sizes, &mut out);
                    for lane in 0..WARP_SIZE {
                        if let (Some(size), Some(slot)) = (batch_sizes[lane], batch_slots[lane]) {
                            settle_malloc(
                                a,
                                warp.warp_id,
                                &mut slots,
                                slot,
                                size,
                                out[lane],
                                heap,
                                &served,
                                &denied,
                                &oob,
                            );
                        }
                        batch_sizes[lane] = None;
                        batch_slots[lane] = None;
                    }
                    pending_mallocs = 0;
                }
            };
        }
        macro_rules! flush_frees {
            () => {
                if pending_frees > 0 {
                    for lane in 0..WARP_SIZE {
                        if let Some(slot) = batch_slots[lane] {
                            verify_stamp(a, warp.warp_id, &slots[slot as usize], slot, &overlaps);
                        }
                    }
                    a.warp_free(warp, &batch_ptrs);
                    for lane in 0..WARP_SIZE {
                        if let Some(slot) = batch_slots[lane] {
                            slots[slot as usize] = (DevicePtr::NULL, 0, false);
                        }
                        batch_ptrs[lane] = DevicePtr::NULL;
                        batch_slots[lane] = None;
                    }
                    pending_frees = 0;
                }
            };
        }

        for op in ops {
            match *op {
                ReplayOp::Malloc { lane, slot, size } => {
                    attempted.fetch_add(1, Ordering::Relaxed);
                    slot_at(&mut slots, slot);
                    if !a.supports_size(size) {
                        denied.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if collective {
                        flush_frees!();
                        if batch_sizes[lane as usize].is_some() {
                            flush_mallocs!(); // lane already queued: new batch
                        }
                        batch_sizes[lane as usize] = Some(size);
                        batch_slots[lane as usize] = Some(slot);
                        pending_mallocs += 1;
                    } else {
                        let p = a.malloc(&warp.lane(lane as usize), size);
                        settle_malloc(
                            a,
                            warp.warp_id,
                            &mut slots,
                            slot,
                            size,
                            p,
                            heap,
                            &served,
                            &denied,
                            &oob,
                        );
                    }
                }
                ReplayOp::Free { lane, slot } => {
                    if collective {
                        // The pointer may still sit in the pending
                        // malloc batch: settle it before looking it up.
                        flush_mallocs!();
                    }
                    slot_at(&mut slots, slot);
                    let entry = slots[slot as usize];
                    if entry.0.is_null() {
                        continue; // the malloc was denied: nothing to free
                    }
                    if collective {
                        if batch_slots[lane as usize].is_some() {
                            flush_frees!();
                        }
                        batch_ptrs[lane as usize] = entry.0;
                        batch_slots[lane as usize] = Some(slot);
                        pending_frees += 1;
                    } else {
                        verify_stamp(a, warp.warp_id, &entry, slot, &overlaps);
                        a.free(&warp.lane(lane as usize), entry.0);
                        slots[slot as usize] = (DevicePtr::NULL, 0, false);
                    }
                }
            }
        }
        flush_mallocs!();
        flush_frees!();
        debug_assert_eq!(
            pending_mallocs + pending_frees,
            0,
            "final flushes must drain both batches"
        );
    });
    ScriptOutcome {
        attempted: attempted.into_inner(),
        served: served.into_inner(),
        denied: denied.into_inner(),
        overlaps: overlaps.into_inner(),
        oob: oob.into_inner(),
        leaked_bytes: a.stats().reserved_bytes,
    }
}

/// Record a malloc result: count served/denied, bounds-check, stamp.
#[allow(clippy::too_many_arguments)]
fn settle_malloc(
    a: &dyn DeviceAllocator,
    warp_id: u64,
    slots: &mut [Slot],
    slot: u32,
    size: u64,
    p: DevicePtr,
    heap: u64,
    served: &AtomicU64,
    denied: &AtomicU64,
    oob: &AtomicU64,
) {
    if p.is_null() {
        denied.fetch_add(1, Ordering::Relaxed);
        return;
    }
    served.fetch_add(1, Ordering::Relaxed);
    if p.0 + size > heap {
        oob.fetch_add(1, Ordering::Relaxed);
        // Kept unstamped; the matching free still returns it.
        slots[slot as usize] = (p, size, false);
    } else {
        a.memory().write_stamp(p, stamp_of(warp_id, slot));
        slots[slot as usize] = (p, size, true);
    }
}

/// A clobbered stamp at free time means two live allocations overlapped.
fn verify_stamp(
    a: &dyn DeviceAllocator,
    warp_id: u64,
    entry: &Slot,
    slot: u32,
    overlaps: &AtomicU64,
) {
    let (p, _, stamped) = *entry;
    if stamped && a.memory().read_stamp(p) != stamp_of(warp_id, slot) {
        overlaps.fetch_add(1, Ordering::Relaxed);
    }
}

/// The directory failing scripts are dumped to: `$GALLATIN_REPLAY_DIR`,
/// defaulting to `target/replay`.
pub fn replay_dump_dir() -> PathBuf {
    std::env::var_os(REPLAY_DIR_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("replay"))
}

/// Write `script` to `dir/<label>-seed<seed>.replay` (creating `dir`,
/// including parents, if missing) so a failing scenario ships its exact
/// workload as a CI artifact. Returns the path, or `None` (with a
/// warning on stderr) if the write failed — dumping is best-effort and
/// never masks the original failure.
pub fn dump_script_to(
    dir: &Path,
    label: &str,
    seed: u64,
    script: &ReplayScript,
) -> Option<PathBuf> {
    let safe: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
        .collect();
    let path = dir.join(format!("{safe}-seed{seed}.replay"));
    let write = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, script.render()));
    match write {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not dump replay script {}: {e}", path.display());
            None
        }
    }
}

/// [`dump_script_to`] targeting [`replay_dump_dir`].
pub fn dump_script(label: &str, seed: u64, script: &ReplayScript) -> Option<PathBuf> {
    dump_script_to(&replay_dump_dir(), label, seed, script)
}

/// Result of one serving batch dispatched by [`run_batch`].
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// One pointer per requested malloc, in request order; NULL means
    /// the allocator denied the request (exhaustion or oversize).
    pub ptrs: Vec<DevicePtr>,
    /// Schedule steps the launch consumed (see
    /// [`gpu_sim::launch_warps_counted`]); 0 in pool mode.
    pub steps: u64,
}

/// Dispatch one serving batch as a single kernel launch: `mallocs`
/// request sizes and `frees` previously-served pointers, packed into
/// warp-collective `warp_malloc`/`warp_free` calls (malloc warps first,
/// then free warps, all concurrent within the launch — the batching a
/// serving layer gets by fusing queued work into one kernel).
///
/// Under a deterministic device the returned `steps` is the simulated
/// service time of the batch, a pure function of `(device seed, batch
/// contents, allocator state)`.
pub fn run_batch(
    a: &dyn DeviceAllocator,
    device: DeviceConfig,
    mallocs: &[u64],
    frees: &[DevicePtr],
) -> BatchResult {
    let w = WARP_SIZE as usize;
    let m_warps = mallocs.len().div_ceil(w);
    let f_warps = frees.len().div_ceil(w);
    if m_warps + f_warps == 0 {
        return BatchResult { ptrs: Vec::new(), steps: 0 };
    }
    let results: Vec<AtomicU64> =
        mallocs.iter().map(|_| AtomicU64::new(DevicePtr::NULL.0)).collect();
    let total_threads = ((m_warps + f_warps) * w) as u64;
    let steps = gpu_sim::launch_warps_counted(device, total_threads, |warp| {
        let id = warp.warp_id as usize;
        let active = warp.active as usize;
        if id < m_warps {
            // Malloc warp: lanes beyond the batch tail request nothing.
            let base = id * w;
            let end = (base + active).min(mallocs.len());
            let mut sizes = vec![None; active];
            for (lane, &size) in mallocs[base..end].iter().enumerate() {
                sizes[lane] = Some(size);
            }
            let mut out = vec![DevicePtr::NULL; active];
            a.warp_malloc(warp, &sizes, &mut out);
            for (lane, ptr) in out.iter().enumerate().take(end - base) {
                results[base + lane].store(ptr.0, Ordering::Relaxed);
            }
        } else {
            // Free warp: tail lanes free NULL, which allocators ignore.
            let base = (id - m_warps) * w;
            let end = (base + active).min(frees.len());
            let mut ptrs = vec![DevicePtr::NULL; active];
            ptrs[..end - base].copy_from_slice(&frees[base..end]);
            a.warp_free(warp, &ptrs);
        }
    });
    let ptrs = results.into_iter().map(|p| DevicePtr(p.into_inner())).collect();
    BatchResult { ptrs, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallatin::{Gallatin, GallatinConfig};
    use gpu_sim::replay::WarpScript;

    fn two_warp_script() -> ReplayScript {
        let mut warps = Vec::new();
        for _ in 0..2 {
            let mut ops = Vec::new();
            for slot in 0..8u32 {
                ops.push(ReplayOp::Malloc { lane: slot % 4, slot, size: 16 << (slot % 3) });
            }
            for slot in (0..8u32).rev() {
                ops.push(ReplayOp::Free { lane: slot % 4, slot });
            }
            warps.push(WarpScript { ops });
        }
        ReplayScript { num_sms: 2, warps }
    }

    #[test]
    fn script_runs_clean_in_both_modes() {
        let script = two_warp_script();
        for collective in [false, true] {
            let g = Gallatin::new(GallatinConfig::small_test(1 << 20));
            let out = run_script(&g, DeviceConfig::with_sms(2).seeded(7), &script, collective);
            assert_eq!(out.attempted, 16);
            assert_eq!(out.served, 16, "collective={collective}: {out:?}");
            assert_eq!(out.denied, 0);
            assert_eq!(out.violations(), (0, 0, 0), "collective={collective}: {out:?}");
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn unsupported_and_exhausted_requests_count_as_denied() {
        // One 64 KiB segment: a second large allocation must be denied
        // (exhaustion), and a larger-than-heap request is unsupported.
        let g = Gallatin::new(GallatinConfig::small_test(1 << 16));
        let script = ReplayScript {
            num_sms: 1,
            warps: vec![WarpScript {
                ops: vec![
                    ReplayOp::Malloc { lane: 0, slot: 0, size: 1 << 16 },
                    ReplayOp::Malloc { lane: 1, slot: 1, size: 1 << 16 },
                    ReplayOp::Malloc { lane: 2, slot: 2, size: 1 << 24 },
                    ReplayOp::Free { lane: 0, slot: 0 },
                    ReplayOp::Free { lane: 1, slot: 1 },
                    ReplayOp::Free { lane: 2, slot: 2 },
                ],
            }],
        };
        let out = run_script(&g, DeviceConfig::with_sms(1).seeded(7), &script, true);
        assert_eq!(out.attempted, 3);
        assert_eq!(out.served, 1);
        assert_eq!(out.denied, 2);
        assert_eq!(out.violations(), (0, 0, 0), "{out:?}");
    }

    #[test]
    fn repeated_lane_use_splits_batches_correctly() {
        // All ops on lane 0: collective mode must flush per op and still
        // produce the same outcome as scalar mode.
        let ops: Vec<ReplayOp> = (0..6u32)
            .map(|slot| ReplayOp::Malloc { lane: 0, slot, size: 32 })
            .chain((0..6u32).map(|slot| ReplayOp::Free { lane: 0, slot }))
            .collect();
        let script = ReplayScript { num_sms: 1, warps: vec![WarpScript { ops }] };
        let g = Gallatin::new(GallatinConfig::small_test(1 << 20));
        let a = run_script(&g, DeviceConfig::with_sms(1).seeded(3), &script, true);
        g.reset();
        let b = run_script(&g, DeviceConfig::with_sms(1).seeded(3), &script, false);
        assert_eq!(a, b);
        assert_eq!(a.served, 6);
        assert_eq!(a.violations(), (0, 0, 0));
    }

    #[test]
    fn intentional_leak_shows_up_in_the_outcome() {
        let g = Gallatin::new(GallatinConfig::small_test(1 << 20));
        let script = ReplayScript {
            num_sms: 1,
            warps: vec![WarpScript { ops: vec![ReplayOp::Malloc { lane: 0, slot: 0, size: 256 }] }],
        };
        let out = run_script(&g, DeviceConfig::with_sms(1).seeded(0), &script, true);
        assert_eq!(out.served, 1);
        assert!(out.leaked_bytes >= 256, "{out:?}");
    }

    #[test]
    fn dump_script_creates_nested_directories() {
        let dir = std::env::temp_dir()
            .join(format!("gallatin-replay-test-{}", std::process::id()))
            .join("deeply")
            .join("nested");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dump_script_to(&dir, "unit test/scenario", 42, &two_warp_script())
            .expect("dump must create missing directories");
        assert!(path.ends_with("unit-test-scenario-seed42.replay"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(ReplayScript::parse(&text).unwrap(), two_warp_script());
        let _ = std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
    }
}
