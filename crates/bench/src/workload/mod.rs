//! Workload engine: sources, scripts, runners, and the timing protocol.
//!
//! Two layers live here:
//!
//! * [`mod@measure`] — the survey timing protocol (allocate → validate →
//!   free kernels, median-of-N), used by the paper experiments E1–E13;
//! * the **script engine** — a [`WorkloadSource`] yields per-warp
//!   allocation scripts ([`gpu_sim::ReplayScript`]) that [`run_script`]
//!   re-issues against any [`gpu_sim::DeviceAllocator`] with the full
//!   stamp/verify/free contract discipline, reducing every run to a
//!   [`ScriptOutcome`] that can be diffed across allocator families.
//!
//! Script sources come in two families (see TESTING.md "Workload
//! sources"): [`TraceReplayer`] re-issues a recorded trace (E17/E19),
//! and [`adversarial`] generates hostile shapes — fragmentation attack,
//! size-class flipper, skewed-SM hotspot, OOM-pressure ramp — that the
//! differential sweep in `crates/allocators/tests/contract.rs` runs
//! across all eight allocator families.

pub mod adversarial;
pub mod measure;
pub mod runner;
pub mod source;

pub use adversarial::{
    all_scenarios, FragmentationAttack, OomPressureRamp, SizeClassFlipper, SkewedHotspot,
};
pub use measure::{measure, median, run_alloc_free, variance, Measurement, RunResult, SizeSpec};
pub use runner::{
    dump_script, dump_script_to, replay_dump_dir, run_script, ScriptOutcome, REPLAY_DIR_ENV,
};
pub use source::{TraceReplayer, WorkloadSource};
