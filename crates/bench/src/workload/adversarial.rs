//! Adversarial workload generators: allocation shapes chosen to stress
//! the specific structures a naive benchmark never touches.
//!
//! Every generator is a [`WorkloadSource`]: `script(seed)` is a pure
//! function of the seed, so a failing `(scenario, seed)` pair replays
//! exactly and can be dumped as a `gallatin-replay-v1` artifact. All
//! scenarios free everything they allocate — a nonzero `leaked_bytes`
//! in the outcome is always the allocator's fault, never the script's.
//!
//! | scenario | attacks |
//! |---|---|
//! | [`FragmentationAttack`] | allocate everything, free every other slot, refill the gaps with *larger* requests |
//! | [`SizeClassFlipper`] | whole warp flips size class every round, defeating the per-SM `BlockBuffer` |
//! | [`SkewedHotspot`] | heavy traffic pinned to one SM, maximizing `GallatinPool` home-instance spill |
//! | [`OomPressureRamp`] | requests past heap capacity, exercising NULL/abort paths and post-OOM recovery |

use super::source::WorkloadSource;
use gpu_sim::replay::{ReplayOp, ReplayScript, WarpScript};
use gpu_sim::WARP_SIZE;

/// Slice-tier size classes under `GallatinConfig::small_test` geometry.
const SLICE_CLASSES: [u64; 5] = [16, 32, 64, 128, 256];

/// SplitMix64 over a few coordinates: the one deterministic hash every
/// generator draws from.
fn mix(vals: &[u64]) -> u64 {
    let mut x = 0x243f_6a88_85a3_08d3u64;
    for &v in vals {
        x = (x ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
    }
    x
}

/// Allocate everything, then free every other slot, then shove *larger*
/// requests into the gapped heap before tearing everything down. The
/// refill phase cannot reuse the freed slices (it asks for bigger
/// classes), so the allocator must produce fresh blocks while half the
/// old ones are pinned — the DynaSOAr-style fragmentation shape.
pub struct FragmentationAttack {
    /// Device width the scripts target.
    pub num_sms: u32,
    /// Warps in the launch.
    pub warps: u32,
    /// Phase-one slots per lane (total slots = `32 × slots_per_lane`).
    pub slots_per_lane: u32,
}

impl FragmentationAttack {
    /// The sweep shape: 8 warps × 128 slots.
    pub fn standard(num_sms: u32) -> Self {
        FragmentationAttack { num_sms, warps: 8, slots_per_lane: 4 }
    }
}

impl WorkloadSource for FragmentationAttack {
    fn name(&self) -> &str {
        "frag-attack"
    }

    fn script(&self, seed: u64) -> ReplayScript {
        let total = WARP_SIZE as u32 * self.slots_per_lane;
        let warps = (0..self.warps as u64)
            .map(|w| {
                let mut ops = Vec::new();
                // Phase 1: allocate everything.
                for slot in 0..total {
                    let size = SLICE_CLASSES
                        [(mix(&[seed, w, slot as u64]) % SLICE_CLASSES.len() as u64) as usize];
                    ops.push(ReplayOp::Malloc { lane: slot % WARP_SIZE as u32, slot, size });
                }
                // Phase 2: free every other slot, punching holes.
                for slot in (0..total).step_by(2) {
                    ops.push(ReplayOp::Free { lane: slot % WARP_SIZE as u32, slot });
                }
                // Phase 3: refill the gaps with larger (block-tier)
                // requests that cannot reuse the freed slices.
                for i in 0..total / 2 {
                    let slot = total + i;
                    let size = 512 << (mix(&[seed, w, refill_coord(slot)]) % 2); // 512 or 1024
                    ops.push(ReplayOp::Malloc { lane: i % WARP_SIZE as u32, slot, size });
                }
                // Phase 4: tear down every survivor.
                for slot in (1..total).step_by(2) {
                    ops.push(ReplayOp::Free { lane: slot % WARP_SIZE as u32, slot });
                }
                for i in 0..total / 2 {
                    let slot = total + i;
                    ops.push(ReplayOp::Free { lane: i % WARP_SIZE as u32, slot });
                }
                WarpScript { ops }
            })
            .collect();
        ReplayScript { num_sms: self.num_sms, warps }
    }
}

/// Helper so phase-3 hashing cannot collide with phase-1 coordinates.
fn refill_coord(slot: u32) -> u64 {
    0xf111_0000_0000_0000 | slot as u64
}

/// Every round the whole warp requests one size class — and the class
/// changes every round. Gallatin's per-SM `BlockBuffer` caches one
/// block per class per SM; a class flip makes the warp miss the warm
/// buffer every single round, forcing the install/replace path that
/// steady same-class traffic never exercises.
pub struct SizeClassFlipper {
    /// Device width the scripts target.
    pub num_sms: u32,
    /// Warps in the launch.
    pub warps: u32,
    /// Malloc-all/free-all rounds per warp.
    pub rounds: u32,
}

impl SizeClassFlipper {
    /// The sweep shape: 8 warps × 6 rounds.
    pub fn standard(num_sms: u32) -> Self {
        SizeClassFlipper { num_sms, warps: 8, rounds: 6 }
    }

    /// The class menu the flipper cycles through: every slice class plus
    /// a block-tier size, so the flip also crosses the tier boundary.
    fn menu() -> [u64; 6] {
        [16, 32, 64, 128, 256, 1024]
    }
}

impl WorkloadSource for SizeClassFlipper {
    fn name(&self) -> &str {
        "class-flipper"
    }

    fn script(&self, seed: u64) -> ReplayScript {
        let menu = Self::menu();
        let warps = (0..self.warps as u64)
            .map(|w| {
                let start = mix(&[seed, w]) % menu.len() as u64;
                // A stride coprime to the menu length guarantees every
                // consecutive round lands on a *different* class.
                let stride = 1 + 2 * (mix(&[seed, w, 1]) % 3); // 1, 3, or 5
                let mut ops = Vec::new();
                for round in 0..self.rounds {
                    let class =
                        menu[((start + round as u64 * stride) % menu.len() as u64) as usize];
                    let base = round * WARP_SIZE as u32;
                    for lane in 0..WARP_SIZE as u32 {
                        ops.push(ReplayOp::Malloc { lane, slot: base + lane, size: class });
                    }
                    // Reverse-order frees so the block drains from the
                    // opposite end it filled.
                    for lane in (0..WARP_SIZE as u32).rev() {
                        ops.push(ReplayOp::Free { lane, slot: base + lane });
                    }
                }
                WarpScript { ops }
            })
            .collect();
        ReplayScript { num_sms: self.num_sms, warps }
    }
}

/// All heavy traffic lands on one seed-chosen SM while the rest of the
/// device idles along — the worst case for anything sharded by SM.
/// Under `GallatinPool` the hot SM's home instance takes every heavy
/// request and must spill to siblings once saturated; under plain
/// Gallatin the hot SM's block buffer and its segment's trees serialize.
pub struct SkewedHotspot {
    /// Device width the scripts target; also decides which warps share
    /// the hot SM (`warp_id % num_sms`).
    pub num_sms: u32,
    /// Warps in the launch (a multiple of `num_sms` keeps the striping
    /// even).
    pub warps: u32,
    /// Malloc-all/free-all rounds each *hot* warp runs (cold warps run
    /// one light round).
    pub hot_rounds: u32,
}

impl SkewedHotspot {
    /// The sweep shape: two full stripes of warps, 8 heavy rounds.
    pub fn standard(num_sms: u32) -> Self {
        SkewedHotspot { num_sms, warps: 2 * num_sms, hot_rounds: 8 }
    }

    /// The SM all heavy traffic is pinned to for `seed`.
    pub fn hot_sm(&self, seed: u64) -> u32 {
        (mix(&[seed, 0x407]) % self.num_sms as u64) as u32
    }
}

impl WorkloadSource for SkewedHotspot {
    fn name(&self) -> &str {
        "skewed-hotspot"
    }

    fn script(&self, seed: u64) -> ReplayScript {
        let hot = self.hot_sm(seed);
        let warps = (0..self.warps as u64)
            .map(|w| {
                let is_hot = (w % self.num_sms as u64) as u32 == hot;
                let rounds = if is_hot { self.hot_rounds } else { 1 };
                let mut ops = Vec::new();
                for round in 0..rounds {
                    let base = round * WARP_SIZE as u32;
                    for lane in 0..WARP_SIZE as u32 {
                        // Hot warps push block-tier sizes (256–1024 B),
                        // cold warps sip 16 B slices.
                        let size = if is_hot {
                            256 << (mix(&[seed, w, round as u64, lane as u64]) % 3)
                        } else {
                            16
                        };
                        ops.push(ReplayOp::Malloc { lane, slot: base + lane, size });
                    }
                    for lane in 0..WARP_SIZE as u32 {
                        ops.push(ReplayOp::Free { lane, slot: base + lane });
                    }
                }
                WarpScript { ops }
            })
            .collect();
        ReplayScript { num_sms: self.num_sms, warps }
    }
}

/// Ramp allocation pressure past the heap: every warp keeps allocating
/// block-tier sizes with no frees until its share of ~1.2× the heap has
/// been *requested*, so every allocator is driven into returning NULL —
/// then frees everything, proving the abort path neither leaked nor
/// corrupted what was served.
pub struct OomPressureRamp {
    /// Device width the scripts target.
    pub num_sms: u32,
    /// Warps in the launch.
    pub warps: u32,
    /// Total bytes the script requests across all warps (set above the
    /// heap size to force denials).
    pub target_bytes: u64,
}

impl OomPressureRamp {
    /// The sweep shape: 8 warps requesting 1.2× the heap.
    pub fn standard(num_sms: u32, heap_bytes: u64) -> Self {
        OomPressureRamp { num_sms, warps: 8, target_bytes: heap_bytes + heap_bytes / 5 }
    }
}

impl WorkloadSource for OomPressureRamp {
    fn name(&self) -> &str {
        "oom-ramp"
    }

    fn script(&self, seed: u64) -> ReplayScript {
        let budget = self.target_bytes / self.warps as u64;
        let warps = (0..self.warps as u64)
            .map(|w| {
                let mut ops = Vec::new();
                let mut requested = 0u64;
                let mut slot = 0u32;
                while requested < budget {
                    // 4 KiB or 8 KiB, seed-hashed: big enough to exhaust
                    // the heap in few ops, small enough that every
                    // baseline family serves it natively.
                    let size = 4096 << (mix(&[seed, w, slot as u64]) % 2);
                    ops.push(ReplayOp::Malloc { lane: slot % WARP_SIZE as u32, slot, size });
                    requested += size;
                    slot += 1;
                }
                // Tear-down: denied slots are skipped by the runner, so
                // this frees exactly what was served.
                for s in 0..slot {
                    ops.push(ReplayOp::Free { lane: s % WARP_SIZE as u32, slot: s });
                }
                WarpScript { ops }
            })
            .collect();
        ReplayScript { num_sms: self.num_sms, warps }
    }
}

/// The full adversarial roster at sweep shape, sized for `heap_bytes`
/// on a `num_sms`-wide device. The differential sweep runs each of
/// these across every allocator family (see
/// `crates/allocators/tests/contract.rs`).
pub fn all_scenarios(heap_bytes: u64, num_sms: u32) -> Vec<Box<dyn WorkloadSource>> {
    vec![
        Box::new(FragmentationAttack::standard(num_sms)),
        Box::new(SizeClassFlipper::standard(num_sms)),
        Box::new(SkewedHotspot::standard(num_sms)),
        Box::new(OomPressureRamp::standard(num_sms, heap_bytes)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::replay::ReplayOp;

    #[test]
    fn scenarios_are_deterministic_and_seed_sensitive() {
        for s in all_scenarios(8 << 20, 4) {
            assert_eq!(s.script(3), s.script(3), "{}: same seed must replay", s.name());
            assert_ne!(
                s.script(3),
                s.script(4),
                "{}: different seeds must vary the workload",
                s.name()
            );
        }
    }

    #[test]
    fn scenarios_free_everything_and_validate() {
        for s in all_scenarios(8 << 20, 4) {
            for seed in [0, 7, 15] {
                let script = s.script(seed);
                assert_eq!(
                    script.validate(),
                    Ok(0),
                    "{} seed {seed}: script must be well-formed and leak-free",
                    s.name()
                );
                assert!(script.total_ops() > 0);
                assert_eq!(script.num_sms, 4);
            }
        }
    }

    #[test]
    fn flipper_changes_class_every_round() {
        let f = SizeClassFlipper::standard(4);
        for seed in 0..8 {
            for w in &f.script(seed).warps {
                let sizes: Vec<u64> = w
                    .ops
                    .iter()
                    .filter_map(|op| match *op {
                        ReplayOp::Malloc { lane: 0, size, .. } => Some(size),
                        _ => None,
                    })
                    .collect();
                assert_eq!(sizes.len(), f.rounds as usize);
                for pair in sizes.windows(2) {
                    assert_ne!(pair[0], pair[1], "consecutive rounds must flip the class");
                }
            }
        }
    }

    #[test]
    fn hotspot_concentrates_heavy_traffic_on_one_sm() {
        let h = SkewedHotspot::standard(4);
        let seed = 11;
        let hot = h.hot_sm(seed);
        let script = h.script(seed);
        for (w, ws) in script.warps.iter().enumerate() {
            let is_hot = (w as u64 % 4) as u32 == hot;
            let expected = if is_hot { h.hot_rounds } else { 1 } as usize * WARP_SIZE * 2;
            assert_eq!(ws.ops.len(), expected, "warp {w} (hot={is_hot})");
        }
    }

    #[test]
    fn oom_ramp_requests_more_than_the_heap() {
        let heap = 8 << 20;
        let r = OomPressureRamp::standard(4, heap);
        let requested: u64 = r
            .script(5)
            .warps
            .iter()
            .flat_map(|w| &w.ops)
            .filter_map(|op| match *op {
                ReplayOp::Malloc { size, .. } => Some(size),
                _ => None,
            })
            .sum();
        assert!(requested > heap, "ramp must exceed the heap: {requested} <= {heap}");
    }
}
