//! # bench: the Gallatin reproduction harness
//!
//! Drivers for every experiment in the paper's §6 evaluation, shared by
//! the `repro` binary and the criterion benches. See DESIGN.md §5 for the
//! experiment index (E1–E15) mapping each figure/table to a subcommand.
//!
//! ## Execution environment note
//!
//! The paper measures an A40 with 10,752 CUDA cores; this harness runs on
//! whatever CPU is present. Two decisions keep the benchmark *shapes*
//! meaningful regardless of host width:
//!
//! * the rayon pool is **oversubscribed** (default 8 OS threads even on a
//!   1-core host, see [`HarnessConfig::pool_threads`]): preemptive OS
//!   scheduling then interleaves warps mid-operation, so lock-based
//!   designs (the CUDA-heap model) genuinely block and lock-free designs
//!   genuinely retry — the serialization structure the paper measures;
//! * every allocator additionally reports its [`gpu_sim::Metrics`]
//!   (atomics issued, CAS retries, lock acquisitions), which are
//!   scheduling-independent witnesses of the same structure.

pub mod experiments;
pub mod perf;
pub mod report;
pub mod roster;
pub mod serve;
pub mod workload;

/// Global harness configuration, parsed from CLI flags by `repro`.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Logical GPU threads for the single/mixed tests (paper: 1 M).
    pub threads: u64,
    /// Runs per measurement; the median is reported (paper: 50).
    pub runs: usize,
    /// Heap given to every allocator.
    pub heap_bytes: u64,
    /// Simulated SMs (sizes Gallatin's block buffers).
    pub num_sms: u32,
    /// OS threads in the executor pool (oversubscription is deliberate).
    pub pool_threads: usize,
    /// Directory for CSV output.
    pub out_dir: String,
    /// Also emit machine-readable `BENCH_<experiment>.json` files (see
    /// `report::write_bench_json`). The ablation/bench-smoke experiments
    /// always write JSON — it is their gating format — regardless of this
    /// flag.
    pub json: bool,
    /// Paper-scale mode: 1 M threads, 50 runs, scaling to 2^20.
    pub full: bool,
    /// CI smoke mode (`--smoke`): shrink sweeps to a gating subset and
    /// fail fast on invariant violations. Honored by `repro serve`.
    pub smoke: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        HarnessConfig {
            threads: 1 << 15,
            runs: 7,
            heap_bytes: 1 << 30,
            num_sms: 128,
            pool_threads: cores.max(8),
            out_dir: "results".to_string(),
            json: false,
            full: false,
            smoke: false,
        }
    }
}

impl HarnessConfig {
    /// Apply paper-scale settings.
    pub fn at_full_scale(mut self) -> Self {
        self.threads = 1 << 20;
        self.runs = 50;
        self.heap_bytes = 2 << 30;
        self.full = true;
        self
    }

    /// Install the oversubscribed executor pool. Call once at startup.
    pub fn install_pool(&self) {
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(self.pool_threads)
            .thread_name(|i| format!("simt-worker-{i}"))
            .build_global();
    }

    /// Device configuration for launches.
    pub fn device(&self) -> gpu_sim::DeviceConfig {
        gpu_sim::DeviceConfig::with_sms(self.num_sms)
    }
}
