//! The serving engine: an open-loop, step-clocked request loop over any
//! [`DeviceAllocator`].
//!
//! Time is the deterministic scheduler's step clock, never wall clock:
//! arrivals are stamped in steps ([`super::arrival`]), each batched
//! kernel launch reports its schedule-step duration
//! ([`gpu_sim::launch_warps_counted`]), and a request's latency is
//! `completion_step − arrival_step` — queueing delay plus service time,
//! both in simulated steps. The whole run is therefore a pure function
//! of `(ServeConfig)` and replays byte-identically.
//!
//! The loop models how a host-side serving layer actually drives a
//! device allocator: requests accumulate in a bounded queue while a
//! kernel is in flight, then the next launch fuses up to `batch_width`
//! queued mallocs plus every due free into one grid. Wider batches
//! amortize launch overhead (higher goodput) but make early requests
//! wait for the batch to fill and lengthen each launch (worse p999) —
//! the trade E20 sweeps.

use super::arrival::{self, ArrivalConfig};
use super::tenant::{Rejection, TenantBook, TenantSpec, N_REJECTIONS};
use crate::workload::runner;
use gpu_sim::ledger::Ledger;
use gpu_sim::trace::{self, TraceSink};
use gpu_sim::{DeviceAllocator, DeviceConfig, StepClock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Full configuration of one serving run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Open-loop arrival schedule.
    pub arrivals: ArrivalConfig,
    /// Tenant roster (weights, quotas, size bands, lifetimes).
    pub tenants: Vec<TenantSpec>,
    /// Base schedule seed; each batch launch derives its own seed from
    /// this chain, so the whole run replays from one value.
    pub sched_seed: u64,
    /// Max queued mallocs fused into one launch.
    pub batch_width: usize,
    /// Bound on the request queue; beyond it arrivals are rejected
    /// with [`Rejection::QueueFull`].
    pub queue_capacity: usize,
    /// Fixed per-launch overhead in steps, modeling the host-side cost
    /// of a kernel launch (clamped to ≥ 1 so the clock always moves).
    pub launch_overhead_steps: u64,
    /// Largest request the backend can serve; larger arrivals are
    /// rejected up front with [`Rejection::Oversize`]. `u64::MAX`
    /// disables the check.
    pub max_request_bytes: u64,
    /// Whether admission control enforces tenant quotas. Off, quotas
    /// are still *witnessed* (see [`ServeOutcome::quota_violations`]) —
    /// the unthrottled arm of the fairness experiment.
    pub enforce_quotas: bool,
    /// Simulated SMs for the launches.
    pub num_sms: u32,
    /// Audit the run with a [`TraceSink`] + [`Ledger`] and report
    /// anomaly counts in the outcome (requires the allocator to emit
    /// lifecycle trace events).
    pub ledger_check: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            arrivals: ArrivalConfig {
                shape: arrival::ArrivalShape::Poisson,
                seed: 0xA11A,
                rate_per_kstep: 40,
                horizon_steps: 20_000,
            },
            tenants: Vec::new(),
            sched_seed: 7,
            batch_width: 64,
            queue_capacity: 256,
            launch_overhead_steps: 8,
            max_request_bytes: u64::MAX,
            enforce_quotas: true,
            num_sms: 16,
            ledger_check: true,
        }
    }
}

/// Exact latency distribution of one run, in schedule steps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Samples (served requests).
    pub count: u64,
    /// Median latency.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Worst observed latency.
    pub max: u64,
    /// Log₂ histogram: bucket `b` counts latencies in `[2^(b−1), 2^b)`
    /// (bucket 0 counts zero-step latencies; bucket 31 is open-ended).
    pub hist: [u64; 32],
}

impl LatencyStats {
    /// Reduce raw samples (sorted in place) to exact nearest-rank
    /// percentiles plus the histogram.
    pub fn from_samples(samples: &mut [u64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        let mut hist = [0u64; 32];
        for &s in samples.iter() {
            let b = if s == 0 { 0 } else { (64 - s.leading_zeros() as usize).min(31) };
            hist[b] += 1;
        }
        LatencyStats {
            count: n as u64,
            p50: rank(0.50),
            p99: rank(0.99),
            p999: rank(0.999),
            max: samples[n - 1],
            hist,
        }
    }
}

/// Per-tenant view of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantOutcome {
    /// Tenant name (from its [`TenantSpec`]).
    pub name: String,
    /// Requests this tenant offered.
    pub offered: u64,
    /// Requests past admission control.
    pub admitted: u64,
    /// Requests that completed with a pointer.
    pub served: u64,
    /// Bytes served.
    pub served_bytes: u64,
    /// Rejection counts, indexed by [`Rejection`] discriminant.
    pub rejected: [u64; N_REJECTIONS],
    /// High-water mark of committed bytes.
    pub peak_live_bytes: u64,
    /// The quota admission enforced (or witnessed) against.
    pub quota_bytes: u64,
    /// This tenant's latency distribution.
    pub latency: LatencyStats,
}

/// Everything observable about one serving run. Integer-only and
/// `PartialEq`, so the determinism test compares whole outcomes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Requests generated by the arrival schedule.
    pub offered: u64,
    /// Bytes across all offered requests.
    pub offered_bytes: u64,
    /// Requests admitted past quota/queue/size checks.
    pub admitted: u64,
    /// Requests that completed with a pointer.
    pub served: u64,
    /// Bytes served.
    pub served_bytes: u64,
    /// Kernel launches issued.
    pub batches: u64,
    /// Total schedule steps across all launches (service time).
    pub sched_steps: u64,
    /// Step-clock value when the last free drained.
    pub end_step: u64,
    /// Run-wide latency distribution.
    pub latency: LatencyStats,
    /// Per-tenant breakdown, in roster order.
    pub tenants: Vec<TenantOutcome>,
    /// Times a tenant's committed bytes exceeded its quota (0 under
    /// enforcement; the unthrottled fairness arm counts overruns here).
    pub quota_violations: u64,
    /// Allocations never freed, per the trace ledger.
    pub ledger_leaks: u64,
    /// Double frees, per the trace ledger.
    pub ledger_double_frees: u64,
    /// Frees of never-allocated pointers, per the trace ledger.
    pub ledger_unknown_frees: u64,
    /// Malloc/free size disagreements, per the trace ledger.
    pub ledger_size_mismatches: u64,
    /// Trace events dropped to the sink capacity bound (0 means the
    /// ledger audit saw the complete run).
    pub trace_dropped: u64,
}

impl ServeOutcome {
    /// Served bytes per 1000 schedule steps — the run's goodput on the
    /// simulated clock.
    pub fn goodput_bytes_per_kstep(&self) -> u64 {
        (self.served_bytes as u128 * 1000 / self.end_step.max(1) as u128) as u64
    }

    /// The smoke-gate predicate: no quota overruns and no allocator
    /// lifecycle anomalies.
    pub fn clean(&self) -> bool {
        self.quota_violations == 0
            && self.ledger_leaks == 0
            && self.ledger_double_frees == 0
            && self.ledger_unknown_frees == 0
            && self.ledger_size_mismatches == 0
            && self.trace_dropped == 0
    }
}

/// SplitMix64 step, used to derive one independent schedule seed per
/// batch from `ServeConfig::sched_seed`.
fn next_seed(chain: &mut u64) -> u64 {
    *chain = chain.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *chain;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A served allocation waiting for its free, keyed by due step in the
/// drain heap.
type DueFree = Reverse<(u64, u64, usize, u64)>; // (due_step, ptr, tenant, size)

/// Run the open-loop serving schedule against `alloc` and reduce it to
/// a [`ServeOutcome`]. The allocator is not reset — callers own its
/// lifecycle — but every served allocation is freed before return (the
/// engine drains), so a clean run leaves the heap empty.
pub fn run_serve_engine(cfg: &ServeConfig, alloc: &dyn DeviceAllocator) -> ServeOutcome {
    run_serve_engine_sampled(cfg, alloc, 0, &mut |_| {})
}

/// [`run_serve_engine`] with a fragmentation-timeline hook: every time
/// the step clock crosses a multiple of `sample_every`, `sampler` is
/// called once with that multiple, at the next batch boundary (the only
/// points where the host observes the device — a mid-kernel probe
/// would not exist on real hardware either). The sampler also fires at
/// step 0, before any batch, capturing the pristine-heap baseline.
/// `sample_every == 0` disables sampling. The sampler runs inside the
/// ledger's trace scope but must not allocate from `alloc`; reading
/// host-side stats (`stats()`, `pool_stats()`, metrics) is the intended
/// use.
pub fn run_serve_engine_sampled(
    cfg: &ServeConfig,
    alloc: &dyn DeviceAllocator,
    sample_every: u64,
    sampler: &mut dyn FnMut(u64),
) -> ServeOutcome {
    let sample = (sample_every > 0).then_some((sample_every, sampler));
    if cfg.ledger_check {
        let sink = Arc::new(TraceSink::new());
        let mut out = trace::with_sink(sink.clone(), move || drive(cfg, alloc, sample));
        let ledger = Ledger::build(&sink.snapshot());
        let audit = ledger.outcome();
        out.ledger_leaks = audit.leaks;
        out.ledger_double_frees = audit.double_frees;
        out.ledger_unknown_frees = audit.unknown_frees;
        out.ledger_size_mismatches = audit.size_mismatches;
        out.trace_dropped = sink.dropped();
        out
    } else {
        drive(cfg, alloc, sample)
    }
}

/// The engine loop proper (ledger audit is layered on by
/// [`run_serve_engine`]).
fn drive(
    cfg: &ServeConfig,
    alloc: &dyn DeviceAllocator,
    mut sample: Option<(u64, &mut dyn FnMut(u64))>,
) -> ServeOutcome {
    let arrivals = arrival::generate(&cfg.arrivals, &cfg.tenants);
    let mut book = TenantBook::new(cfg.tenants.clone(), cfg.enforce_quotas);
    let n_tenants = cfg.tenants.len();
    let overhead = cfg.launch_overhead_steps.max(1);
    let base_device = DeviceConfig::with_sms(cfg.num_sms);
    let mut seed_chain = cfg.sched_seed;

    let mut clock = StepClock::new();
    let mut next_arrival = 0usize;
    let mut queue: VecDeque<usize> = VecDeque::new(); // indices into `arrivals`
    let mut due_frees: BinaryHeap<DueFree> = BinaryHeap::new();

    let mut offered = 0u64;
    let mut offered_bytes = 0u64;
    let mut admitted = vec![0u64; n_tenants];
    let mut served = vec![0u64; n_tenants];
    let mut served_bytes = vec![0u64; n_tenants];
    let mut t_offered = vec![0u64; n_tenants];
    let mut latencies: Vec<u64> = Vec::new();
    let mut t_latencies: Vec<Vec<u64>> = vec![Vec::new(); n_tenants];
    let mut batches = 0u64;
    let mut sched_steps = 0u64;

    // Cadence bookkeeping for the fragmentation timeline; fires once
    // per crossed multiple, however far one batch jumps the clock.
    let mut next_sample = 0u64;
    macro_rules! drain_samples {
        () => {
            if let Some((every, f)) = sample.as_mut() {
                while next_sample <= clock.now() {
                    f(next_sample);
                    next_sample += *every;
                }
            }
        };
    }
    drain_samples!(); // the step-0 pristine-heap baseline

    loop {
        // Ingest every arrival whose stamp has passed. This happens at
        // batch boundaries — requests landing mid-flight wait exactly
        // as they would while a real kernel occupies the device.
        while next_arrival < arrivals.len() && arrivals[next_arrival].step <= clock.now() {
            let idx = next_arrival;
            next_arrival += 1;
            let a = &arrivals[idx];
            offered += 1;
            offered_bytes += a.size;
            t_offered[a.tenant] += 1;
            if a.size > cfg.max_request_bytes {
                book.reject(a.tenant, Rejection::Oversize);
            } else if queue.len() >= cfg.queue_capacity {
                book.reject(a.tenant, Rejection::QueueFull);
            } else if book.try_admit(a.tenant, a.size).is_ok() {
                admitted[a.tenant] += 1;
                queue.push_back(idx);
            }
        }

        // Compose the batch: every due free plus up to batch_width
        // queued mallocs.
        let mut batch_frees: Vec<(u64, usize, u64)> = Vec::new();
        while let Some(&Reverse((due, ptr, tenant, size))) = due_frees.peek() {
            if due > clock.now() {
                break;
            }
            due_frees.pop();
            batch_frees.push((ptr, tenant, size));
        }
        let take = queue.len().min(cfg.batch_width);
        let batch_ids: Vec<usize> = queue.drain(..take).collect();

        if batch_frees.is_empty() && batch_ids.is_empty() {
            // Idle: jump the clock to the next event, or finish.
            let next_a = arrivals.get(next_arrival).map(|a| a.step);
            let next_f = due_frees.peek().map(|Reverse((due, ..))| *due);
            match (next_a, next_f) {
                (None, None) => break,
                (a, f) => {
                    clock.advance_to(a.unwrap_or(u64::MAX).min(f.unwrap_or(u64::MAX)));
                }
            }
            drain_samples!();
            continue;
        }

        batches += 1;
        let sizes: Vec<u64> = batch_ids.iter().map(|&i| arrivals[i].size).collect();
        let free_ptrs: Vec<gpu_sim::DevicePtr> =
            batch_frees.iter().map(|&(p, ..)| gpu_sim::DevicePtr(p)).collect();
        let device = base_device.seeded(next_seed(&mut seed_chain));
        let result = runner::run_batch(alloc, device, &sizes, &free_ptrs);
        sched_steps += result.steps;
        let completion = clock.now() + overhead + result.steps;

        for &(_, tenant, size) in &batch_frees {
            book.on_free(tenant, size);
        }
        for (&idx, &ptr) in batch_ids.iter().zip(result.ptrs.iter()) {
            let a = &arrivals[idx];
            if ptr.is_null() {
                book.refund(a.tenant, a.size);
                book.reject(a.tenant, Rejection::Exhausted);
            } else {
                served[a.tenant] += 1;
                served_bytes[a.tenant] += a.size;
                let latency = completion - a.step;
                latencies.push(latency);
                t_latencies[a.tenant].push(latency);
                due_frees.push(Reverse((completion + a.lifetime, ptr.0, a.tenant, a.size)));
            }
        }
        clock.advance_to(completion);
        drain_samples!();
    }

    let tenants = (0..n_tenants)
        .map(|t| TenantOutcome {
            name: cfg.tenants[t].name.clone(),
            offered: t_offered[t],
            admitted: admitted[t],
            served: served[t],
            served_bytes: served_bytes[t],
            rejected: std::array::from_fn(|k| book.rejected(t, Rejection::ALL[k])),
            peak_live_bytes: book.peak(t),
            quota_bytes: cfg.tenants[t].quota_bytes,
            latency: LatencyStats::from_samples(&mut t_latencies[t]),
        })
        .collect();

    ServeOutcome {
        offered,
        offered_bytes,
        admitted: admitted.iter().sum(),
        served: served.iter().sum(),
        served_bytes: served_bytes.iter().sum(),
        batches,
        sched_steps,
        end_step: clock.now(),
        latency: LatencyStats::from_samples(&mut latencies),
        tenants,
        quota_violations: book.quota_violations(),
        ledger_leaks: 0,
        ledger_double_frees: 0,
        ledger_unknown_frees: 0,
        ledger_size_mismatches: 0,
        trace_dropped: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallatin::{Gallatin, GallatinConfig};

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            arrivals: ArrivalConfig {
                shape: arrival::ArrivalShape::Poisson,
                seed: 5,
                rate_per_kstep: 60,
                horizon_steps: 6_000,
            },
            tenants: vec![
                TenantSpec {
                    name: "svc-a".into(),
                    weight: 3,
                    quota_bytes: 1 << 22,
                    size_min: 16,
                    size_max: 2048,
                    mean_lifetime_steps: 64,
                },
                TenantSpec {
                    name: "svc-b".into(),
                    weight: 1,
                    quota_bytes: 1 << 20,
                    size_min: 64,
                    size_max: 512,
                    mean_lifetime_steps: 16,
                },
            ],
            sched_seed: 7,
            batch_width: 32,
            queue_capacity: 128,
            launch_overhead_steps: 4,
            max_request_bytes: u64::MAX,
            enforce_quotas: true,
            num_sms: 4,
            ledger_check: true,
        }
    }

    #[test]
    fn serving_run_drains_and_audits_clean() {
        let cfg = small_cfg();
        let alloc = Gallatin::new(GallatinConfig::small_test(1 << 22));
        let out = run_serve_engine(&cfg, &alloc);
        assert!(out.offered > 100, "arrival schedule should produce load");
        assert!(out.served > 0);
        assert!(out.served <= out.admitted && out.admitted <= out.offered);
        assert!(out.clean(), "leaks/anomalies: {out:?}");
        assert_eq!(alloc.stats().reserved_bytes, 0, "engine must drain every allocation");
        assert_eq!(out.latency.count, out.served);
        assert_eq!(out.latency.hist.iter().sum::<u64>(), out.served);
        assert!(out.latency.p50 <= out.latency.p99 && out.latency.p99 <= out.latency.p999);
        assert!(out.end_step >= cfg.arrivals.horizon_steps / 2);
    }

    #[test]
    fn sampler_fires_on_cadence_and_never_perturbs_the_run() {
        let cfg = small_cfg();
        // Fresh allocator per run: a warm heap changes per-batch step
        // counts, which would mask whether sampling itself perturbs.
        let baseline = run_serve_engine(&cfg, &Gallatin::new(GallatinConfig::small_test(1 << 22)));
        let alloc = Gallatin::new(GallatinConfig::small_test(1 << 22));
        let mut stamps = Vec::new();
        let sampled = run_serve_engine_sampled(&cfg, &alloc, 500, &mut |step| stamps.push(step));
        assert_eq!(sampled, baseline, "sampling is observation only");
        // Exactly the multiples of the cadence up to the end of the run,
        // starting from the step-0 baseline row.
        let expected: Vec<u64> =
            (0..).map(|i| i * 500).take_while(|&s| s <= sampled.end_step).collect();
        assert_eq!(stamps, expected);
        assert!(stamps.len() > 5, "the horizon should span many cadence windows");
    }

    #[test]
    fn latency_stats_exact_percentiles() {
        let mut samples: Vec<u64> = (1..=1000).collect();
        let s = LatencyStats::from_samples(&mut samples);
        assert_eq!(s.p50, 500);
        assert_eq!(s.p99, 990);
        assert_eq!(s.p999, 999);
        assert_eq!(s.max, 1000);
        assert_eq!(s.count, 1000);
        assert_eq!(LatencyStats::from_samples(&mut []), LatencyStats::default());
    }

    #[test]
    fn tight_quota_is_never_exceeded() {
        let mut cfg = small_cfg();
        cfg.tenants[0].quota_bytes = 1 << 10;
        cfg.tenants[1].quota_bytes = 512;
        let alloc = Gallatin::new(GallatinConfig::small_test(1 << 22));
        let out = run_serve_engine(&cfg, &alloc);
        assert_eq!(out.quota_violations, 0);
        for t in &out.tenants {
            assert!(
                t.peak_live_bytes <= t.quota_bytes,
                "{}: peak {} > quota {}",
                t.name,
                t.peak_live_bytes,
                t.quota_bytes
            );
        }
        let quota_rejects: u64 = out.tenants.iter().map(|t| t.rejected[0]).sum();
        assert!(quota_rejects > 0, "tight quotas should actually reject");
        assert!(out.clean());
    }

    #[test]
    fn oversize_requests_are_rejected_up_front() {
        let mut cfg = small_cfg();
        cfg.max_request_bytes = 256;
        let alloc = Gallatin::new(GallatinConfig::small_test(1 << 22));
        let out = run_serve_engine(&cfg, &alloc);
        let oversize: u64 = out.tenants.iter().map(|t| t.rejected[2]).sum();
        assert!(oversize > 0, "size bands exceed 256 B, some must be rejected");
        assert!(out.clean());
    }
}
