//! Multi-tenant accounting and admission control for the serving layer.
//!
//! Each tenant has a byte quota. Admission control charges a tenant's
//! *committed* bytes at enqueue time — not at allocation time — so a
//! burst cannot overshoot its quota while its requests sit in the queue;
//! the charge is refunded if the allocator ultimately returns NULL.
//! Rejections are typed ([`Rejection`]) so a sweep can tell back-pressure
//! (queue full) apart from policy (quota) and capacity (heap exhausted).

/// Static description of one tenant in the serving mix.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name, used in per-tenant BENCH rows.
    pub name: String,
    /// Relative share of the arrival stream (weighted draw).
    pub weight: u32,
    /// Byte quota enforced by admission control.
    pub quota_bytes: u64,
    /// Smallest request this tenant issues.
    pub size_min: u64,
    /// Largest request this tenant issues.
    pub size_max: u64,
    /// Mean steps between a request completing and its free.
    pub mean_lifetime_steps: u64,
}

/// Why the serving layer refused a request. `as usize` indexes the
/// per-tenant rejection counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// Admitting the request would push the tenant past its byte quota.
    QuotaExceeded = 0,
    /// The bounded request queue is full (open-loop back-pressure).
    QueueFull = 1,
    /// The request exceeds the backend's largest serviceable size
    /// (e.g. a [`gallatin::GallatinPool`] instance stride).
    Oversize = 2,
    /// Admitted, dispatched, and the allocator returned NULL.
    Exhausted = 3,
}

/// Number of [`Rejection`] kinds (array dimension for counters).
pub const N_REJECTIONS: usize = 4;

impl Rejection {
    /// All kinds, in counter-index order.
    pub const ALL: [Rejection; N_REJECTIONS] =
        [Rejection::QuotaExceeded, Rejection::QueueFull, Rejection::Oversize, Rejection::Exhausted];

    /// Stable label used in BENCH counts.
    pub fn label(self) -> &'static str {
        match self {
            Rejection::QuotaExceeded => "rejected_quota",
            Rejection::QueueFull => "rejected_queue",
            Rejection::Oversize => "rejected_oversize",
            Rejection::Exhausted => "rejected_exhausted",
        }
    }
}

/// Live byte accounting and rejection tallies for every tenant.
pub struct TenantBook {
    specs: Vec<TenantSpec>,
    /// Whether quota admission is enforced. When off (the unthrottled
    /// fairness arm), `try_admit` always admits but still counts
    /// [`TenantBook::quota_violations`] as a witness of the overrun.
    enforce: bool,
    /// Committed bytes per tenant (admitted, not yet freed).
    live: Vec<u64>,
    /// High-water mark of `live`.
    peak: Vec<u64>,
    /// Per-tenant rejection counters, indexed by `Rejection as usize`.
    rejected: Vec<[u64; N_REJECTIONS]>,
    /// Times any tenant's committed bytes exceeded its quota (only
    /// reachable with enforcement off; the smoke gate requires 0).
    violations: u64,
}

impl TenantBook {
    /// A fresh book over `specs`.
    pub fn new(specs: Vec<TenantSpec>, enforce: bool) -> Self {
        let n = specs.len();
        TenantBook {
            specs,
            enforce,
            live: vec![0; n],
            peak: vec![0; n],
            rejected: vec![[0; N_REJECTIONS]; n],
            violations: 0,
        }
    }

    /// Tenant roster.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// Try to commit `size` bytes against tenant `t`'s quota. On `Ok`
    /// the bytes are charged; refund with [`Self::refund`] if the
    /// allocator later denies the request, or release with
    /// [`Self::on_free`] when the allocation's lifetime ends.
    pub fn try_admit(&mut self, t: usize, size: u64) -> Result<(), Rejection> {
        let next = self.live[t] + size;
        if self.enforce && next > self.specs[t].quota_bytes {
            self.rejected[t][Rejection::QuotaExceeded as usize] += 1;
            return Err(Rejection::QuotaExceeded);
        }
        self.live[t] = next;
        if next > self.specs[t].quota_bytes {
            self.violations += 1;
        }
        if next > self.peak[t] {
            self.peak[t] = next;
        }
        Ok(())
    }

    /// Count a non-quota rejection for tenant `t`.
    pub fn reject(&mut self, t: usize, why: Rejection) {
        self.rejected[t][why as usize] += 1;
    }

    /// Return committed bytes after the allocator denied the request.
    pub fn refund(&mut self, t: usize, size: u64) {
        debug_assert!(self.live[t] >= size, "refund exceeds committed bytes");
        self.live[t] -= size;
    }

    /// Release committed bytes when an allocation is freed.
    pub fn on_free(&mut self, t: usize, size: u64) {
        debug_assert!(self.live[t] >= size, "free exceeds committed bytes");
        self.live[t] -= size;
    }

    /// Currently committed bytes for tenant `t`.
    pub fn live(&self, t: usize) -> u64 {
        self.live[t]
    }

    /// High-water mark of committed bytes for tenant `t`.
    pub fn peak(&self, t: usize) -> u64 {
        self.peak[t]
    }

    /// Rejections of `why` charged to tenant `t`.
    pub fn rejected(&self, t: usize, why: Rejection) -> u64 {
        self.rejected[t][why as usize]
    }

    /// Total quota overruns observed (must be 0 under enforcement).
    pub fn quota_violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(quota: u64) -> Vec<TenantSpec> {
        vec![TenantSpec {
            name: "t".into(),
            weight: 1,
            quota_bytes: quota,
            size_min: 16,
            size_max: 16,
            mean_lifetime_steps: 1,
        }]
    }

    #[test]
    fn enforced_quota_rejects_at_the_boundary() {
        let mut book = TenantBook::new(one(100), true);
        assert!(book.try_admit(0, 60).is_ok());
        assert!(book.try_admit(0, 40).is_ok(), "exactly at quota is admitted");
        assert_eq!(book.try_admit(0, 1), Err(Rejection::QuotaExceeded));
        assert_eq!(book.rejected(0, Rejection::QuotaExceeded), 1);
        assert_eq!(book.live(0), 100);
        assert_eq!(book.peak(0), 100);
        assert_eq!(book.quota_violations(), 0);
        book.on_free(0, 40);
        assert!(book.try_admit(0, 30).is_ok(), "freed bytes reopen headroom");
        assert_eq!(book.peak(0), 100, "peak is a high-water mark");
    }

    #[test]
    fn unenforced_quota_admits_but_witnesses_violations() {
        let mut book = TenantBook::new(one(100), false);
        assert!(book.try_admit(0, 90).is_ok());
        assert!(book.try_admit(0, 90).is_ok(), "no enforcement ⇒ admitted");
        assert_eq!(book.live(0), 180);
        assert_eq!(book.quota_violations(), 1);
    }

    #[test]
    fn refund_reverses_an_admission() {
        let mut book = TenantBook::new(one(100), true);
        assert!(book.try_admit(0, 100).is_ok());
        book.refund(0, 100);
        assert_eq!(book.live(0), 0);
        assert!(book.try_admit(0, 100).is_ok(), "refunded bytes are available again");
    }
}
