//! Open-loop arrival generation for the serving benchmark (E20).
//!
//! A serving experiment is only meaningful under an *open-loop* driver:
//! requests arrive on their own clock whether or not the allocator has
//! kept up, so queueing delay compounds past saturation instead of being
//! hidden by a closed loop that waits for each reply. This module
//! pre-generates the full arrival schedule — step-stamped on the
//! simulated [`gpu_sim::StepClock`], never wall clock — from a seed, so
//! a run is replayable byte-for-byte.
//!
//! Three arrival shapes share one mean offered load (so sweeps compare
//! burstiness at equal work):
//!
//! * [`ArrivalShape::Poisson`] — memoryless, the classic serving
//!   baseline;
//! * [`ArrivalShape::Bursty`] — an ON/OFF modulation (5× rate for a
//!   quarter of each period) that stresses queue depth and tail latency;
//! * [`ArrivalShape::Diurnal`] — a slow sinusoid over the horizon,
//!   modeling a day-night load curve.
//!
//! Shapes are realized by thinning a homogeneous Poisson process at the
//! peak rate, the standard construction for inhomogeneous processes:
//! candidates are drawn at `rate_max` and accepted with probability
//! `rate(t) / rate_max`, which preserves determinism because the draw
//! sequence depends only on the seed.

use super::tenant::TenantSpec;

/// Which inter-arrival process drives the open loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalShape {
    /// Memoryless arrivals at a constant mean rate.
    Poisson,
    /// ON/OFF modulation: 2.5× the mean rate for the first quarter of
    /// each [`BURST_PERIOD_STEPS`] window, 0.5× for the rest (mean 1×).
    Bursty,
    /// One sinusoidal "day" across the horizon, swinging between 0.25×
    /// and 1.75× the mean rate (mean 1×).
    Diurnal,
}

/// Length of one ON/OFF window for [`ArrivalShape::Bursty`].
pub const BURST_PERIOD_STEPS: u64 = 4096;

impl ArrivalShape {
    /// Stable label used in BENCH params and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            ArrivalShape::Poisson => "poisson",
            ArrivalShape::Bursty => "bursty",
            ArrivalShape::Diurnal => "diurnal",
        }
    }

    /// Instantaneous rate multiplier at `step` (mean 1.0 over the
    /// horizon for every shape, so offered load is shape-independent).
    fn factor(self, step: u64, horizon: u64) -> f64 {
        match self {
            ArrivalShape::Poisson => 1.0,
            ArrivalShape::Bursty => {
                if step % BURST_PERIOD_STEPS < BURST_PERIOD_STEPS / 4 {
                    2.5
                } else {
                    0.5
                }
            }
            ArrivalShape::Diurnal => {
                let phase = step as f64 / horizon.max(1) as f64;
                0.25 + 0.75 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos())
            }
        }
    }

    /// Upper bound of [`Self::factor`], the thinning envelope.
    fn factor_max(self) -> f64 {
        match self {
            ArrivalShape::Poisson => 1.0,
            ArrivalShape::Bursty => 2.5,
            ArrivalShape::Diurnal => 1.75,
        }
    }
}

/// Configuration of one arrival schedule.
#[derive(Clone, Debug)]
pub struct ArrivalConfig {
    /// Inter-arrival process.
    pub shape: ArrivalShape,
    /// Seed for the generator; same seed ⇒ identical schedule.
    pub seed: u64,
    /// Mean offered load: requests per 1000 schedule steps.
    pub rate_per_kstep: u64,
    /// Steps over which arrivals are generated (requests in flight may
    /// complete after the horizon; the engine drains them).
    pub horizon_steps: u64,
}

/// One request in the open-loop schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Step-clock stamp at which the request enters the system.
    pub step: u64,
    /// Index into the tenant roster of the issuing tenant.
    pub tenant: usize,
    /// Requested bytes (log-uniform within the tenant's size band).
    pub size: u64,
    /// Steps between the malloc completing and the free being issued
    /// (exponential with the tenant's mean lifetime).
    pub lifetime: u64,
}

/// SplitMix64, same constants as `gpu_sim::sched`'s private copy: the
/// bench crate keeps its own so arrival randomness and schedule
/// randomness stay independent streams even under the same seed.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1) with 53 bits of mantissa.
    fn u01(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with mean 1 (inverse-CDF; `1 - u` avoids ln(0)).
    fn exp1(&mut self) -> f64 {
        -(1.0 - self.u01()).ln()
    }
}

/// Draw a tenant index by weight.
fn pick_tenant(rng: &mut SplitMix64, tenants: &[TenantSpec]) -> usize {
    let total: u64 = tenants.iter().map(|t| t.weight as u64).sum();
    debug_assert!(total > 0, "tenant weights must not all be zero");
    let mut ticket = rng.next() % total;
    for (i, t) in tenants.iter().enumerate() {
        if ticket < t.weight as u64 {
            return i;
        }
        ticket -= t.weight as u64;
    }
    tenants.len() - 1
}

/// Log-uniform size in `[size_min, size_max]` — small requests dominate
/// by count, as in real allocation mixes, while large ones still appear.
fn pick_size(rng: &mut SplitMix64, t: &TenantSpec) -> u64 {
    if t.size_max <= t.size_min {
        return t.size_min;
    }
    let lo = (t.size_min as f64).ln();
    let hi = (t.size_max as f64).ln();
    let size = (lo + (hi - lo) * rng.u01()).exp().round() as u64;
    size.clamp(t.size_min, t.size_max)
}

/// Generate the full step-stamped arrival schedule.
///
/// The returned vector is sorted by `step` (thinning emits candidates in
/// time order). Determinism: the output is a pure function of
/// `(cfg, tenants)`.
pub fn generate(cfg: &ArrivalConfig, tenants: &[TenantSpec]) -> Vec<Arrival> {
    assert!(!tenants.is_empty(), "serving needs at least one tenant");
    let base_rate = cfg.rate_per_kstep as f64 / 1000.0;
    if base_rate <= 0.0 || cfg.horizon_steps == 0 {
        return Vec::new();
    }
    let rate_max = base_rate * cfg.shape.factor_max();
    let mut rng = SplitMix64::new(cfg.seed);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += rng.exp1() / rate_max;
        let step = t as u64;
        if step >= cfg.horizon_steps {
            break;
        }
        // Thinning: accept with probability rate(t)/rate_max. The
        // rejected draws still consume rng state, keeping the stream
        // deterministic.
        if rng.u01() * cfg.shape.factor_max() > cfg.shape.factor(step, cfg.horizon_steps) {
            continue;
        }
        let tenant = pick_tenant(&mut rng, tenants);
        let spec = &tenants[tenant];
        let size = pick_size(&mut rng, spec);
        let lifetime = (rng.exp1() * spec.mean_lifetime_steps as f64).round() as u64;
        out.push(Arrival { step, tenant, size, lifetime: lifetime.max(1) });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                name: "a".into(),
                weight: 3,
                quota_bytes: 1 << 20,
                size_min: 16,
                size_max: 4096,
                mean_lifetime_steps: 64,
            },
            TenantSpec {
                name: "b".into(),
                weight: 1,
                quota_bytes: 1 << 20,
                size_min: 64,
                size_max: 64,
                mean_lifetime_steps: 8,
            },
        ]
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ArrivalConfig {
            shape: ArrivalShape::Bursty,
            seed: 42,
            rate_per_kstep: 80,
            horizon_steps: 20_000,
        };
        let a = generate(&cfg, &two_tenants());
        let b = generate(&cfg, &two_tenants());
        assert!(!a.is_empty());
        assert_eq!(a, b, "arrival schedule must replay from its seed");
        let c = generate(&ArrivalConfig { seed: 43, ..cfg }, &two_tenants());
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn arrivals_are_sorted_bounded_and_weighted() {
        let tenants = two_tenants();
        for shape in [ArrivalShape::Poisson, ArrivalShape::Bursty, ArrivalShape::Diurnal] {
            let cfg = ArrivalConfig { shape, seed: 7, rate_per_kstep: 100, horizon_steps: 50_000 };
            let arrivals = generate(&cfg, &tenants);
            assert!(arrivals.windows(2).all(|w| w[0].step <= w[1].step), "sorted by step");
            assert!(arrivals.iter().all(|a| a.step < cfg.horizon_steps));
            for a in &arrivals {
                let t = &tenants[a.tenant];
                assert!(a.size >= t.size_min && a.size <= t.size_max);
                assert!(a.lifetime >= 1);
            }
            // Mean load ≈ rate for every shape: 100/kstep × 50k steps
            // = 5000 expected. Allow ±20% for process variance.
            let n = arrivals.len() as f64;
            assert!((4000.0..=6000.0).contains(&n), "{}: got {n} arrivals", shape.label());
            // Weight-3 tenant should see roughly 3× the requests.
            let a_count = arrivals.iter().filter(|a| a.tenant == 0).count() as f64;
            let share = a_count / n;
            assert!((0.65..=0.85).contains(&share), "tenant share {share}");
        }
    }

    #[test]
    fn bursty_concentrates_in_on_windows() {
        let cfg = ArrivalConfig {
            shape: ArrivalShape::Bursty,
            seed: 9,
            rate_per_kstep: 100,
            horizon_steps: 8 * BURST_PERIOD_STEPS,
        };
        let arrivals = generate(&cfg, &two_tenants());
        let on = arrivals
            .iter()
            .filter(|a| a.step % BURST_PERIOD_STEPS < BURST_PERIOD_STEPS / 4)
            .count() as f64;
        let share = on / arrivals.len() as f64;
        // ON quarter carries 2.5/(2.5+1.5) = 62.5% of the load.
        assert!((0.5..=0.75).contains(&share), "ON-window share {share}");
    }
}
