//! Host-side serving layer over the device allocators (experiment E20).
//!
//! The paper evaluates Gallatin with closed-loop kernels: every thread
//! allocates, the kernel ends, throughput is the measure. A memory
//! manager embedded in a real service sees a different regime — requests
//! arrive on their own clock, get batched into kernel launches, and the
//! interesting numbers are tail latency and goodput as offered load
//! approaches the allocator's capacity. This module adds that serving
//! harness on top of the existing warp-collective machinery:
//!
//! * [`arrival`] — seeded open-loop arrival schedules (Poisson, bursty,
//!   diurnal), step-stamped on the simulated clock;
//! * [`tenant`] — multi-tenant byte quotas, admission control, typed
//!   rejections;
//! * [`engine`] — the bounded-queue batching loop that turns queued
//!   requests into `warp_malloc`/`warp_free` launches via
//!   [`crate::workload::runner::run_batch`] and reduces the run to
//!   p50/p99/p999 latency and goodput.
//!
//! Determinism: a run is a pure function of its [`engine::ServeConfig`].
//! Arrivals replay from the arrival seed, every launch replays from a
//! seed chained off `sched_seed`, and service time is the deterministic
//! scheduler's step count — so two runs produce byte-identical latency
//! histograms, which the `serve_determinism` integration test pins.

pub mod arrival;
pub mod engine;
pub mod tenant;

pub use arrival::{Arrival, ArrivalConfig, ArrivalShape};
pub use engine::{
    run_serve_engine, run_serve_engine_sampled, LatencyStats, ServeConfig, ServeOutcome,
    TenantOutcome,
};
pub use tenant::{Rejection, TenantBook, TenantSpec, N_REJECTIONS};
