//! Tier-1 promotion of the E16 bench-smoke gate: regenerate the
//! deterministic atomic-op counts for the smoke seed subset and diff
//! them against the committed baseline in
//! `results/BENCH_bench_smoke.json`, inside `cargo test` instead of a
//! separate `repro bench-smoke` invocation.
//!
//! The gate is pure counting — no wall-clock thresholds — so it is
//! stable on any machine. Tracing is compiled in by default but no sink
//! is installed here, which is exactly the configuration the acceptance
//! criterion pins down: disabled tracing must add ZERO atomic ops to
//! the baseline counts.

use bench::experiments::ablation::{smoke_gate, smoke_records};
use bench::report::read_bench_json;
use std::path::Path;

#[test]
fn bench_smoke_counts_match_committed_baseline() {
    let baseline_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_bench_smoke.json");
    let baseline = read_bench_json(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path.display()));
    let current = smoke_records();
    let (failures, notes) = smoke_gate(&current, &baseline);
    for note in &notes {
        eprintln!("note: {note}");
    }
    assert!(
        failures.is_empty(),
        "E16 smoke gate failed:\n  {}\n\
         If a count grew on purpose, refresh the baseline with\n  \
         cargo run --release -p bench --bin repro -- bench-smoke --json\n\
         and commit results/BENCH_bench_smoke.json. To inspect the\n\
         interleaving behind a count, capture it with\n  \
         GALLATIN_SCHED_SEED=<seed> cargo run -p bench --bin repro -- trace",
        failures.join("\n  ")
    );
}
