//! Regression tests for artifact writers on fresh output directories.
//!
//! Every `repro` subcommand accepts `--out DIR` for a directory that may
//! not exist (CI passes per-job scratch paths; E19 additionally writes
//! `.replay` scripts next to the JSON). Each writer must create the
//! directory — parents included — rather than fail with `NotFound`, and
//! a written artifact must read back identically.

use bench::report::{read_bench_json, write_bench_json, BenchRecord, Table};
use bench::workload::dump_script_to;
use gpu_sim::replay::{ReplayOp, ReplayScript, WarpScript};
use std::path::PathBuf;

/// A unique, non-existent nested directory per test.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("gallatin-results-dir-{}-{tag}", std::process::id()))
        .join("deeply")
        .join("nested");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!dir.exists());
    dir
}

#[test]
fn bench_json_writer_creates_missing_nested_directories_and_round_trips() {
    let dir = fresh_dir("json");
    let rec = BenchRecord {
        experiment: "unit".to_string(),
        allocator: "Gallatin".to_string(),
        params: vec![("case".to_string(), "results-dir".to_string())],
        median_ms: 1.5,
        counts: vec![("events".to_string(), 7)],
    };
    let path = write_bench_json(dir.to_str().unwrap(), "unit", &[rec.clone()])
        .expect("writer must create the whole directory chain");
    assert!(path.ends_with("BENCH_unit.json"));
    let back = read_bench_json(&path).expect("written JSON must parse back");
    assert_eq!(back, vec![rec]);
    let _ = std::fs::remove_dir_all(dir.ancestors().nth(2).unwrap());
}

#[test]
fn table_csv_writer_creates_missing_nested_directories() {
    let dir = fresh_dir("csv");
    let mut tab = Table::new("unit", &["k", "v"]);
    tab.row(vec!["events".to_string(), "7".to_string()]);
    tab.emit(dir.to_str().unwrap(), "unit_table");
    let text = std::fs::read_to_string(dir.join("unit_table.csv"))
        .expect("emit must create the directory and write the CSV");
    assert_eq!(text, "k,v\nevents,7\n");
    let _ = std::fs::remove_dir_all(dir.ancestors().nth(2).unwrap());
}

#[test]
fn replay_script_dumper_creates_missing_nested_directories() {
    let dir = fresh_dir("replay");
    let script = ReplayScript {
        num_sms: 2,
        warps: vec![WarpScript {
            ops: vec![
                ReplayOp::Malloc { lane: 0, slot: 0, size: 64 },
                ReplayOp::Free { lane: 0, slot: 0 },
            ],
        }],
    };
    let path = dump_script_to(&dir, "unit", 9, &script)
        .expect("dumper must create the whole directory chain");
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(ReplayScript::parse(&text), Ok(script));
    let _ = std::fs::remove_dir_all(dir.ancestors().nth(2).unwrap());
}
