//! Property test: the Chrome `trace_event` exporter in
//! `gpu_sim::trace` loses nothing. Arbitrary well-formed record lists,
//! rendered with [`chrome_trace_json`] and re-read with the bench
//! crate's own JSON parser, decode back to the original records —
//! names, coordinates, and every typed payload field.
//!
//! Values stay below 2^32 because the hand-rolled parser goes through
//! `f64` (exact only up to 2^53); the allocator never produces offsets
//! anywhere near that in simulation.

use bench::report::json::{self, Value};
use gpu_sim::trace::{
    chrome_trace_json, AllocTier, ReclaimPhase, TraceEvent, TraceRecord, LANE_NONE,
};
use proptest::prelude::*;

/// Exclusive bound keeping every numeric field exactly representable
/// after a trip through the parser's `f64`.
const B: u64 = 1 << 32;
const B32: u32 = u32::MAX;

fn tier_strategy() -> impl Strategy<Value = AllocTier> {
    prop_oneof![Just(AllocTier::Slice), Just(AllocTier::Block), Just(AllocTier::Large)]
}

fn phase_strategy() -> impl Strategy<Value = ReclaimPhase> {
    prop_oneof![Just(ReclaimPhase::Attempt), Just(ReclaimPhase::Abort), Just(ReclaimPhase::Publish),]
}

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (0..B, tier_strategy(), 0..B).prop_map(|(size, tier, ptr)| TraceEvent::Malloc {
            size,
            tier,
            ptr
        }),
        (0..B, 0..B).prop_map(|(ptr, size)| TraceEvent::Free { ptr, size }),
        (0..B, 0..B32).prop_map(|(seg, class)| TraceEvent::SegmentGrab { seg, class }),
        (0..B, 0..B32, 0..B).prop_map(|(seg, class, drain_spins)| {
            TraceEvent::SegmentReformat { seg, class, drain_spins }
        }),
        (0..B, 0..B32, phase_strategy())
            .prop_map(|(seg, class, phase)| TraceEvent::SegmentReclaim { seg, class, phase }),
        (0..B, 0..B).prop_map(|(seg, block)| TraceEvent::RingPush { seg, block }),
        (0..B, 0..B).prop_map(|(seg, block)| TraceEvent::RingPop { seg, block }),
        (0..B, 0..B, 0..B32, 0..B32, 0..B32).prop_map(|(seg, block, attempts, gen, taken)| {
            TraceEvent::ClaimCas { seg, block, attempts, gen, taken }
        }),
        (0..B32, 0..B32).prop_map(|(class, lanes)| TraceEvent::CoalesceGroup { class, lanes }),
        (0..B32, 0..B).prop_map(|(slot, block)| TraceEvent::BufferInstall { slot, block }),
        (0..B32, 0..B, 0..B).prop_map(|(slot, old, new)| TraceEvent::BufferReplace {
            slot,
            old,
            new
        }),
    ]
}

/// Pool instance ids, weighted toward 0 so both exporter branches run:
/// instance 0 is *omitted* from the JSON (single-instance traces stay
/// byte-identical to the pre-pool format) and must decode back as the
/// default.
fn instance_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![Just(0u32), 1..B32]
}

/// Device ids, weighted toward 0 for the same reason: device 0 is
/// omitted from the JSON (single-device traces stay byte-identical to
/// the pre-topology format) and must decode back as the default.
fn device_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![Just(0u32), 1..B32]
}

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (0..B32, 0..B, 0u32..33, device_strategy(), instance_strategy(), event_strategy()).prop_map(
        |(sm, warp, lane, device, instance, event)| TraceRecord {
            step: 0, // assigned from the index below, like the real sink's ticket
            sm,
            warp,
            lane: if lane == 32 { LANE_NONE } else { lane },
            device,
            instance,
            event,
        },
    )
}

fn field(args: &Value, key: &str) -> u64 {
    args.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("args missing numeric {key}: {args:?}")) as u64
}

/// An optional numeric field the exporter elides at its default (the
/// pool instance id).
fn opt_field(args: &Value, key: &str, default: u64) -> u64 {
    args.get(key).and_then(Value::as_f64).map(|v| v as u64).unwrap_or(default)
}

fn label<'v>(args: &'v Value, key: &str) -> &'v str {
    args.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("args missing string {key}: {args:?}"))
}

/// Decode one `traceEvents` entry back into a [`TraceRecord`].
fn decode(entry: &Value) -> TraceRecord {
    let name = entry.get("name").and_then(Value::as_str).expect("name");
    let args = entry.get("args").expect("args");
    let event = match name {
        "malloc" => TraceEvent::Malloc {
            size: field(args, "size"),
            tier: AllocTier::from_label(label(args, "tier")).expect("tier label"),
            ptr: field(args, "ptr"),
        },
        "free" => TraceEvent::Free { ptr: field(args, "ptr"), size: field(args, "size") },
        "segment_grab" => {
            TraceEvent::SegmentGrab { seg: field(args, "seg"), class: field(args, "class") as u32 }
        }
        "segment_reformat" => TraceEvent::SegmentReformat {
            seg: field(args, "seg"),
            class: field(args, "class") as u32,
            drain_spins: field(args, "drain_spins"),
        },
        "segment_reclaim" => TraceEvent::SegmentReclaim {
            seg: field(args, "seg"),
            class: field(args, "class") as u32,
            phase: ReclaimPhase::from_label(label(args, "phase")).expect("phase label"),
        },
        "ring_push" => {
            TraceEvent::RingPush { seg: field(args, "seg"), block: field(args, "block") }
        }
        "ring_pop" => TraceEvent::RingPop { seg: field(args, "seg"), block: field(args, "block") },
        "claim_cas" => TraceEvent::ClaimCas {
            seg: field(args, "seg"),
            block: field(args, "block"),
            attempts: field(args, "attempts") as u32,
            gen: field(args, "gen") as u32,
            taken: field(args, "taken") as u32,
        },
        "coalesce_group" => TraceEvent::CoalesceGroup {
            class: field(args, "class") as u32,
            lanes: field(args, "lanes") as u32,
        },
        "buffer_install" => TraceEvent::BufferInstall {
            slot: field(args, "slot") as u32,
            block: field(args, "block"),
        },
        "buffer_replace" => TraceEvent::BufferReplace {
            slot: field(args, "slot") as u32,
            old: field(args, "old"),
            new: field(args, "new"),
        },
        other => panic!("unknown event name {other}"),
    };
    TraceRecord {
        step: field(entry, "ts"),
        sm: field(entry, "pid") as u32,
        warp: field(entry, "tid"),
        lane: field(args, "lane") as u32,
        device: opt_field(args, "device", 0) as u32,
        instance: opt_field(args, "instance", 0) as u32,
        event,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chrome_export_roundtrips(mut records in prop::collection::vec(record_strategy(), 0..40)) {
        for (i, r) in records.iter_mut().enumerate() {
            r.step = i as u64;
        }
        let text = chrome_trace_json(&records);
        let doc = json::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("exporter produced invalid JSON: {e}")))?;
        prop_assert_eq!(
            doc.get("displayTimeUnit").and_then(Value::as_str),
            Some("ns")
        );
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or_else(|| TestCaseError::fail("missing traceEvents array"))?;
        prop_assert_eq!(events.len(), records.len());
        for (entry, original) in events.iter().zip(&records) {
            prop_assert_eq!(entry.get("ph").and_then(Value::as_str), Some("i"));
            prop_assert_eq!(decode(entry), *original);
        }
    }
}
