//! Pool-mode integration for the adversarial workload suite: the
//! skewed-hotspot generator must actually produce the spill pressure it
//! advertises, and real pool runs over the shared arena must keep
//! global pointers disjoint across instances — the segment routing
//! table is the single source of truth for who owns an address — with a
//! clean per-`(instance, ptr)` lifecycle ledger.

use bench::workload::{run_script, SkewedHotspot, WorkloadSource};
use gallatin::{GallatinConfig, GallatinPool};
use gpu_sim::trace::{Ledger, TraceEvent, TraceSink};
use gpu_sim::{DeviceAllocator, DeviceConfig};
use std::collections::HashMap;
use std::sync::Arc;

const NUM_SMS: u32 = 4;

/// Per-instance heap small enough that the hot SM's block-tier traffic
/// (256–1024 B across flipping classes) overruns its home instance,
/// while the cold SMs' 16 B trickle never does.
const TIGHT_HEAP: u64 = 128 << 10; // 2 small_test segments per instance

#[test]
fn skewed_hotspot_spills_only_from_the_hot_home() {
    let seed = 11;
    let h = SkewedHotspot::standard(NUM_SMS);
    let hot = h.hot_sm(seed) as usize;
    let script = h.script(seed);
    let pool = GallatinPool::new(NUM_SMS as usize, GallatinConfig::small_test(TIGHT_HEAP));
    let out = run_script(&pool, DeviceConfig::with_sms(NUM_SMS).seeded(seed), &script, true);
    assert_eq!(out.violations(), (0, 0, 0), "{out:?}");
    assert!(out.served > 0, "{out:?}");
    pool.check_invariants().expect("pool healthy after hotspot");

    // The generator's whole point: the hot SM's home instance saturates
    // and walks to siblings; the cold homes never need to.
    assert!(
        pool.spill_count(hot) > 0,
        "hot home {hot} must overflow under seed {seed} (spills {:?})",
        (0..NUM_SMS as usize).map(|i| pool.spill_count(i)).collect::<Vec<_>>()
    );
    for i in (0..NUM_SMS as usize).filter(|&i| i != hot) {
        assert_eq!(
            pool.spill_count(i),
            0,
            "cold home {i} only sips 16 B slices and must never spill"
        );
    }
}

#[test]
fn pool_replay_keeps_global_pointers_disjoint_across_instances() {
    // Instances share one arena and one memory table: every pointer is a
    // global device offset inside its serving instance's owned segments.
    // A multi-instance run must therefore never hand the same ptr value
    // to two instances concurrently — the segment routing table is what
    // makes cross-SM frees land — and the ledger's per-(instance, ptr)
    // pairing must come up clean.
    let seed = 3;
    let script = SkewedHotspot::standard(NUM_SMS).script(seed);
    let pool = GallatinPool::new(NUM_SMS as usize, GallatinConfig::small_test(TIGHT_HEAP));
    let sink = Arc::new(TraceSink::new());
    let (out, records) = gpu_sim::trace::with_sink(sink.clone(), || {
        let out = run_script(&pool, DeviceConfig::with_sms(NUM_SMS).seeded(seed), &script, true);
        (out, sink.snapshot())
    });
    assert_eq!(sink.dropped(), 0);
    assert_eq!(out.violations(), (0, 0, 0), "{out:?}");

    // Count which instances allocated each recorded ptr value.
    let mut by_ptr: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut instances_seen: Vec<u32> = Vec::new();
    for r in &records {
        if let TraceEvent::Malloc { ptr, .. } = r.event {
            let owners = by_ptr.entry(ptr).or_default();
            if !owners.contains(&r.instance) {
                owners.push(r.instance);
            }
            if !instances_seen.contains(&r.instance) {
                instances_seen.push(r.instance);
            }
        }
    }
    assert!(instances_seen.len() > 1, "the hotspot run must exercise several instances");
    for (ptr, owners) in &by_ptr {
        assert_eq!(
            owners.len(),
            1,
            "global ptr {ptr:#x} was served by several instances at once: {owners:?}"
        );
    }

    let ledger = Ledger::build(&records);
    let outcome = ledger.outcome();
    assert_eq!(outcome.leaks, 0, "{}", ledger.report());
    assert_eq!(outcome.double_frees, 0, "{}", ledger.report());
    assert_eq!(outcome.unknown_frees, 0, "{}", ledger.report());
    assert_eq!(outcome.mallocs, out.served);
    assert_eq!(outcome.frees, out.served, "leak-free script frees everything it was served");
}
