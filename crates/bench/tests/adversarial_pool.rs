//! Pool-mode integration for the adversarial workload suite: the
//! skewed-hotspot generator must actually produce the spill pressure it
//! advertises, and real pool runs must exhibit the cross-instance
//! pointer collisions the lifecycle ledger's per-`(instance, ptr)`
//! pairing exists for — with zero anomalies despite the collisions.

use bench::workload::{run_script, SkewedHotspot, WorkloadSource};
use gallatin::{GallatinConfig, GallatinPool};
use gpu_sim::trace::{Ledger, TraceEvent, TraceSink};
use gpu_sim::{DeviceAllocator, DeviceConfig};
use std::collections::HashMap;
use std::sync::Arc;

const NUM_SMS: u32 = 4;

/// Per-instance heap small enough that the hot SM's block-tier traffic
/// (256–1024 B across flipping classes) overruns its home instance,
/// while the cold SMs' 16 B trickle never does.
const TIGHT_HEAP: u64 = 128 << 10; // 2 small_test segments per instance

#[test]
fn skewed_hotspot_spills_only_from_the_hot_home() {
    let seed = 11;
    let h = SkewedHotspot::standard(NUM_SMS);
    let hot = h.hot_sm(seed) as usize;
    let script = h.script(seed);
    let pool = GallatinPool::new(NUM_SMS as usize, GallatinConfig::small_test(TIGHT_HEAP));
    let out = run_script(&pool, DeviceConfig::with_sms(NUM_SMS).seeded(seed), &script, true);
    assert_eq!(out.violations(), (0, 0, 0), "{out:?}");
    assert!(out.served > 0, "{out:?}");
    pool.check_invariants().expect("pool healthy after hotspot");

    // The generator's whole point: the hot SM's home instance saturates
    // and walks to siblings; the cold homes never need to.
    assert!(
        pool.spill_count(hot) > 0,
        "hot home {hot} must overflow under seed {seed} (spills {:?})",
        (0..NUM_SMS as usize).map(|i| pool.spill_count(i)).collect::<Vec<_>>()
    );
    for i in (0..NUM_SMS as usize).filter(|&i| i != hot) {
        assert_eq!(
            pool.spill_count(i),
            0,
            "cold home {i} only sips 16 B slices and must never spill"
        );
    }
}

#[test]
fn pool_replay_collides_local_pointers_without_ledger_anomalies() {
    // Every instance starts serving from its own offset 0, and the trace
    // records instance-local pointers — so a multi-instance run *will*
    // reuse the same ptr value across instances. The ledger must pair
    // per (instance, ptr) and report a clean lifecycle anyway.
    let seed = 3;
    let script = SkewedHotspot::standard(NUM_SMS).script(seed);
    let pool = GallatinPool::new(NUM_SMS as usize, GallatinConfig::small_test(TIGHT_HEAP));
    let sink = Arc::new(TraceSink::new());
    let (out, records) = gpu_sim::trace::with_sink(sink.clone(), || {
        let out = run_script(&pool, DeviceConfig::with_sms(NUM_SMS).seeded(seed), &script, true);
        (out, sink.snapshot())
    });
    assert_eq!(sink.dropped(), 0);
    assert_eq!(out.violations(), (0, 0, 0), "{out:?}");

    // Count which instances allocated each recorded local ptr value.
    let mut by_ptr: HashMap<u64, Vec<u32>> = HashMap::new();
    for r in &records {
        if let TraceEvent::Malloc { ptr, .. } = r.event {
            let owners = by_ptr.entry(ptr).or_default();
            if !owners.contains(&r.instance) {
                owners.push(r.instance);
            }
        }
    }
    assert!(
        by_ptr.values().any(|owners| owners.len() > 1),
        "a multi-instance run must reuse local offsets across instances"
    );

    let ledger = Ledger::build(&records);
    let outcome = ledger.outcome();
    assert_eq!(outcome.leaks, 0, "{}", ledger.report());
    assert_eq!(outcome.double_frees, 0, "{}", ledger.report());
    assert_eq!(outcome.unknown_frees, 0, "{}", ledger.report());
    assert_eq!(outcome.mallocs, out.served);
    assert_eq!(outcome.frees, out.served, "leak-free script frees everything it was served");
}
