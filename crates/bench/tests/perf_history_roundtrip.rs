//! Property: the `gallatin-perf-v1` writer/parser pair is lossless over
//! arbitrary runs — `parse_run(render_run(run)) == run` — including
//! hostile strings in every label and the `"untimed"` NaN spelling.
//!
//! Medians are generated as n/64 rationals so the writer's fixed
//! `{:.6}` decimal rendering is exact and `==` is a fair round-trip
//! check (an arbitrary f64 would lose sub-microsecond bits by design).
//!
//! A second property drives the full file path: append a generated
//! sequence of runs one at a time, read the history back, and require
//! the same sequence — the append-only JSONL layout must never disturb
//! earlier lines.

use bench::perf::{append_run, parse_run, read_history, render_run, PerfRun};
use bench::report::BenchRecord;
use proptest::prelude::*;

/// Character pool for generated labels — plain identifier characters
/// plus every escaping hazard: quote, backslash, newline, tab, unicode.
const LABEL_CHARS: &[char] =
    &['a', 'b', 'z', '0', '9', '_', '.', ':', '-', '"', '\\', '\n', '\t', 'κ', ' '];

/// Labels exercise escaping: quotes, backslashes, newlines, unicode.
fn label() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..LABEL_CHARS.len(), 1..12)
        .prop_map(|ix| ix.into_iter().map(|i| LABEL_CHARS[i]).collect())
}

/// Exact-decimal milliseconds (n/64 ≤ ~16k ms) or the untimed marker.
fn median() -> impl Strategy<Value = f64> {
    prop_oneof![(0u32..1 << 20).prop_map(|n| n as f64 / 64.0), Just(f64::NAN),]
}

fn record() -> impl Strategy<Value = BenchRecord> {
    (
        label(),
        label(),
        prop::collection::vec((label(), label()), 0..4),
        median(),
        // Counts ride through the f64-backed JSON parser, so the format
        // is exact only below 2^53 — far above any real atomic counter.
        prop::collection::vec((label(), 0u64..1 << 53), 0..4),
    )
        .prop_map(|(experiment, allocator, params, median_ms, counts)| BenchRecord {
            experiment,
            allocator,
            params,
            median_ms,
            counts,
        })
}

fn run() -> impl Strategy<Value = PerfRun> {
    (label(), label(), label(), 1u32..10, prop::collection::vec(record(), 0..5)).prop_map(
        |(sha, stamp, host, samples, records)| PerfRun { sha, stamp, host, samples, records },
    )
}

/// NaN-tolerant equality (`PerfRun`'s derived `PartialEq` fails on the
/// untimed rows since NaN != NaN).
fn runs_equal(a: &PerfRun, b: &PerfRun) -> bool {
    a.sha == b.sha
        && a.stamp == b.stamp
        && a.host == b.host
        && a.samples == b.samples
        && a.records.len() == b.records.len()
        && a.records.iter().zip(&b.records).all(|(x, y)| {
            x.experiment == y.experiment
                && x.allocator == y.allocator
                && x.params == y.params
                && x.counts == y.counts
                && (x.median_ms == y.median_ms || (x.median_ms.is_nan() && y.median_ms.is_nan()))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn perf_run_round_trips(run in run()) {
        let line = render_run(&run);
        prop_assert!(!line.contains('\n'), "JSONL line must stay single-line: {line:?}");
        let back = parse_run(&line).map_err(|e| {
            TestCaseError::fail(format!("parse failed: {e}\nline: {line}"))
        })?;
        prop_assert!(runs_equal(&run, &back), "round trip diverged:\n{run:?}\n{back:?}");
    }

    #[test]
    fn history_file_round_trips(runs in prop::collection::vec(run(), 1..5), tag in 0u64..u64::MAX) {
        let dir = std::env::temp_dir().join(format!("gallatin-perf-roundtrip-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        for r in &runs {
            append_run(&dir, r).expect("append");
        }
        let back = read_history(&dir).map_err(TestCaseError::fail)?;
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(back.len(), runs.len());
        for (a, b) in runs.iter().zip(&back) {
            prop_assert!(runs_equal(a, b), "history diverged:\n{:?}\n{:?}", a, b);
        }
    }
}
