//! Serving-layer guarantees (ISSUE PR7 satellite 3):
//!
//! 1. **Determinism** — the same `(GALLATIN_SCHED_SEED, arrival seed)`
//!    pair produces byte-identical outcomes, including the full latency
//!    histogram, across independent runs and for both backend families.
//! 2. **Admission safety** — under randomized arrival mixes, no tenant's
//!    committed bytes ever exceed its quota while enforcement is on.

use bench::serve::{run_serve_engine, ArrivalConfig, ArrivalShape, ServeConfig, TenantSpec};
use gallatin::{Gallatin, GallatinConfig, GallatinPool};
use proptest::prelude::*;

fn tenants(quota_a: u64, quota_b: u64) -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "svc-a".into(),
            weight: 3,
            quota_bytes: quota_a,
            size_min: 16,
            size_max: 4096,
            mean_lifetime_steps: 96,
        },
        TenantSpec {
            name: "svc-b".into(),
            weight: 1,
            quota_bytes: quota_b,
            size_min: 64,
            size_max: 1024,
            mean_lifetime_steps: 24,
        },
    ]
}

fn serve_cfg(shape: ArrivalShape, arrival_seed: u64, sched_seed: u64, rate: u64) -> ServeConfig {
    ServeConfig {
        arrivals: ArrivalConfig {
            shape,
            seed: arrival_seed,
            rate_per_kstep: rate,
            horizon_steps: 8_000,
        },
        tenants: tenants(1 << 21, 1 << 20),
        sched_seed,
        batch_width: 32,
        queue_capacity: 128,
        launch_overhead_steps: 8,
        max_request_bytes: u64::MAX,
        enforce_quotas: true,
        num_sms: 8,
        ledger_check: true,
    }
}

/// Same seeds ⇒ identical outcome, down to every histogram bucket, on a
/// fresh allocator per run (what two invocations of `repro serve` do).
#[test]
fn same_seeds_replay_byte_identical_histograms() {
    for shape in [ArrivalShape::Poisson, ArrivalShape::Bursty] {
        let cfg = serve_cfg(shape, 0xFEED, 7, 120);
        let a = run_serve_engine(&cfg, &Gallatin::new(GallatinConfig::small_test(1 << 22)));
        let b = run_serve_engine(&cfg, &Gallatin::new(GallatinConfig::small_test(1 << 22)));
        assert_eq!(a, b, "whole outcome must replay ({})", shape.label());
        // The histogram comparison the BENCH_serve.json gate relies on,
        // stated byte-for-byte.
        assert_eq!(
            format!("{:?}", a.latency.hist),
            format!("{:?}", b.latency.hist),
            "latency histograms must be byte-identical"
        );
        assert!(a.served > 0 && a.clean());
    }
}

/// The pool backend replays too, and a different schedule seed really
/// changes the run (the clock is schedule-driven, not a constant).
#[test]
fn pool_backend_replays_and_seed_matters() {
    let cfg = serve_cfg(ArrivalShape::Poisson, 0xBEEF, 11, 120);
    let mk = || GallatinPool::new(2, GallatinConfig::small_test(1 << 22));
    let a = run_serve_engine(&cfg, &mk());
    let b = run_serve_engine(&cfg, &mk());
    assert_eq!(a, b, "pool outcome must replay");
    let other = ServeConfig { sched_seed: 12, ..cfg };
    let c = run_serve_engine(&other, &mk());
    assert_ne!(a.latency, c.latency, "schedule seed must actually drive service time");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Admission control invariant: whatever the arrival mix, no
    /// tenant's committed bytes ever exceed its quota.
    #[test]
    fn no_tenant_ever_exceeds_quota(
        arrival_seed in any::<u64>(),
        sched_seed in any::<u64>(),
        rate in 20u64..240,
        quota_a in (4u64 << 10)..(1 << 21),
        quota_b in (1u64 << 10)..(1 << 20),
        shape_ix in 0usize..3,
    ) {
        let shape = [ArrivalShape::Poisson, ArrivalShape::Bursty, ArrivalShape::Diurnal][shape_ix];
        let mut cfg = serve_cfg(shape, arrival_seed, sched_seed, rate);
        cfg.arrivals.horizon_steps = 3_000;
        cfg.tenants = tenants(quota_a, quota_b);
        let alloc = Gallatin::new(GallatinConfig::small_test(1 << 22));
        let out = run_serve_engine(&cfg, &alloc);
        prop_assert_eq!(out.quota_violations, 0);
        for t in &out.tenants {
            prop_assert!(
                t.peak_live_bytes <= t.quota_bytes,
                "{} peaked at {} over quota {}", t.name, t.peak_live_bytes, t.quota_bytes
            );
        }
        // The run must also stay lifecycle-clean: every served
        // allocation freed, no double frees, no size mismatches.
        prop_assert_eq!(out.ledger_leaks, 0);
        prop_assert_eq!(out.ledger_double_frees, 0);
        prop_assert_eq!(out.ledger_unknown_frees, 0);
        prop_assert_eq!(out.ledger_size_mismatches, 0);
    }
}
