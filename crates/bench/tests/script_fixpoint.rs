//! Property: a well-formed workload script survives the full
//! record/replay loop unchanged — script → run (traced) → lifecycle
//! records → [`ReplayScript::from_trace`] → the *same* script.
//!
//! The fixpoint holds only inside the representable subset, which the
//! generator is careful to stay in (each constraint mirrors a documented
//! lossy edge of the trace format):
//!
//! * **sizes are exact size classes** — trace `Malloc` events carry the
//!   class-rounded size, so an off-class request would round-trip to its
//!   class, not itself;
//! * **every op uses lane 0** — scalar mallocs and frees are recorded
//!   without a lane (`LANE_NONE`), which the converter canonicalizes to
//!   0 (per-lane attribution exists only on the warp-collective slice
//!   path);
//! * **slots are allocated in per-warp malloc order** — the converter
//!   numbers slots by malloc appearance order;
//! * **scalar mode** — collective batching may reorder ops within a
//!   batch, scalar mode preserves strict per-warp op order;
//! * **every warp mallocs at least once and the heap never runs out** —
//!   a denied request records nothing and a silent warp records no
//!   script entry at all.

use bench::workload::run_script;
use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::replay::{ReplayOp, ReplayScript, WarpScript};
use gpu_sim::trace::TraceSink;
use gpu_sim::{DeviceConfig, WARP_SIZE};
use proptest::prelude::*;
use std::sync::Arc;

/// Exact slice classes under `small_test` geometry: recorded sizes equal
/// requested sizes for these and only these small requests.
const CLASSES: [u64; 5] = [16, 32, 64, 128, 256];

const NUM_SMS: u32 = 4;
const HEAP: u64 = 8 << 20;

/// One generator step: allocate a class, then maybe free one existing
/// allocation chosen by `pick`.
type Step = (u8, bool, u8);

/// Build a representable script from generator steps: slots numbered in
/// malloc order, every op on lane 0, frees targeting a live slot,
/// everything freed at the end so the script is leak-free by
/// construction.
fn build_script(per_warp: &[Vec<Step>]) -> ReplayScript {
    let warps = per_warp
        .iter()
        .map(|steps| {
            let mut ops = Vec::new();
            let mut live: Vec<u32> = Vec::new();
            let mut next_slot = 0u32;
            for &(class, do_free, pick) in steps {
                let size = CLASSES[class as usize % CLASSES.len()];
                ops.push(ReplayOp::Malloc { lane: 0, slot: next_slot, size });
                live.push(next_slot);
                next_slot += 1;
                if do_free && !live.is_empty() {
                    let slot = live.swap_remove(pick as usize % live.len());
                    ops.push(ReplayOp::Free { lane: 0, slot });
                }
            }
            for slot in live {
                ops.push(ReplayOp::Free { lane: 0, slot });
            }
            WarpScript { ops }
        })
        .collect();
    ReplayScript { num_sms: NUM_SMS, warps }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn script_is_a_fixpoint_of_record_then_convert(
        per_warp in prop::collection::vec(
            prop::collection::vec(
                (0u8..5, (0u8..2).prop_map(|b| b == 1), 0u8..255),
                1..24,
            ),
            1..5,
        )
    ) {
        let script = build_script(&per_warp);
        prop_assert_eq!(script.validate(), Ok(0), "generator must produce leak-free scripts");

        let g = Gallatin::new(GallatinConfig::small_test(HEAP));
        let sink = Arc::new(TraceSink::new());
        let (outcome, records) = gpu_sim::trace::with_sink(sink.clone(), || {
            let out = run_script(
                &g,
                DeviceConfig::with_sms(NUM_SMS).seeded(7),
                &script,
                false, // scalar: strict per-warp op order
            );
            (out, sink.snapshot())
        });
        prop_assert_eq!(sink.dropped(), 0, "sink must capture the whole run");
        prop_assert_eq!(outcome.denied, 0, "workload is far below heap capacity");
        prop_assert_eq!(outcome.violations(), (0, 0, 0), "{:?}", outcome);

        let (rebuilt, stats) = ReplayScript::from_trace(&records, NUM_SMS);
        prop_assert_eq!(stats.reassigned_frees, 0, "scripts free within the warp");
        prop_assert_eq!(stats.dropped_frees, 0, "every free pairs with its malloc");
        prop_assert_eq!(stats.mallocs + stats.frees, script.total_ops());
        prop_assert_eq!(&rebuilt, &script, "record→convert must be the identity");

        // And once inside the representable subset, the text format is a
        // fixpoint too.
        let reparsed = ReplayScript::parse(&rebuilt.render());
        prop_assert_eq!(
            reparsed,
            Ok(script),
            "render→parse must also be the identity"
        );
    }
}
