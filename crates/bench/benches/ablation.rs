//! E14 — ablation benches for Gallatin's design choices (DESIGN.md §5).
//!
//! Three knobs the paper's discussion (§6.13) attributes Gallatin's
//! performance to:
//!
//! * **warp coalescing** — collective `warp_malloc` (one atomic per
//!   same-class group) vs per-lane scalar mallocs (one atomic each);
//! * **block buffers** — the per-SM cache of live blocks vs pulling every
//!   block through the block tree (approximated by a 1-SM configuration,
//!   which funnels all warps through a single buffer slot);
//! * **SM fan-out** — how throughput changes with the number of buffer
//!   slots (num_sms sweep).
//!
//! The bench also prints atomics-per-malloc from the instrumentation
//! counters, the scheduling-independent witness of the coalescing win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr};

const THREADS: u64 = 8192;

fn run_coalesced(a: &Gallatin, device: DeviceConfig) {
    launch_warps(device, THREADS, |warp| {
        let sizes = [Some(16u64); gpu_sim::WARP_SIZE];
        let mut out = [DevicePtr::NULL; gpu_sim::WARP_SIZE];
        let n = warp.active as usize;
        a.warp_malloc(warp, &sizes[..n], &mut out[..n]);
        a.warp_free(warp, &out[..n]);
    });
}

fn run_scalar(a: &Gallatin, device: DeviceConfig) {
    launch_warps(device, THREADS, |warp| {
        let mut out = [DevicePtr::NULL; gpu_sim::WARP_SIZE];
        for lane in warp.lanes() {
            out[lane] = a.malloc(&warp.lane(lane), 16);
        }
        for lane in warp.lanes() {
            if !out[lane].is_null() {
                a.free(&warp.lane(lane), out[lane]);
            }
        }
    });
}

fn bench_ablation(c: &mut Criterion) {
    let _ = rayon::ThreadPoolBuilder::new().num_threads(8).build_global();
    let device = DeviceConfig::with_sms(128);

    // --- coalescing on/off ---
    let mut group = c.benchmark_group("ablation_coalescing");
    group.sample_size(10);
    group.throughput(Throughput::Elements(THREADS));
    let a = Gallatin::new(GallatinConfig { heap_bytes: 256 << 20, ..Default::default() });
    group.bench_function("warp_coalesced", |b| {
        b.iter(|| run_coalesced(&a, device));
    });
    // Report the atomic-op witness once, outside timing.
    a.reset();
    run_coalesced(&a, device);
    let coalesced_rmw = a.metrics().unwrap().snapshot().rmw_per_malloc();
    a.reset();
    group.bench_function("per_lane_scalar", |b| {
        b.iter(|| run_scalar(&a, device));
    });
    a.reset();
    run_scalar(&a, device);
    let scalar_rmw = a.metrics().unwrap().snapshot().rmw_per_malloc();
    println!(
        "\n[ablation] atomics per malloc: coalesced={coalesced_rmw:.3} scalar={scalar_rmw:.3} \
         (reduction {:.1}x)",
        scalar_rmw / coalesced_rmw.max(1e-9)
    );
    group.finish();

    // --- block-buffer fan-out: sweep the SM count ---
    let mut group = c.benchmark_group("ablation_buffer_slots");
    group.sample_size(10);
    group.throughput(Throughput::Elements(THREADS));
    for sms in [1u32, 8, 32, 128] {
        let a = Gallatin::new(GallatinConfig {
            heap_bytes: 256 << 20,
            num_sms: sms,
            min_buffer_slots: 1,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("num_sms", sms), &sms, |b, _| {
            b.iter(|| run_coalesced(&a, DeviceConfig::with_sms(sms)));
        });
    }
    group.finish();

    // --- vEB tree vs flat linear scan behind the segment/block indexes.
    // The gap widens with segment count (linear scans are O(universe/64)
    // per search), so sweep the heap size. Block churn is forced by
    // allocating whole blocks (every alloc walks the block index).
    let mut group = c.benchmark_group("ablation_index_structure");
    group.sample_size(10);
    for (label, search) in [
        ("veb", gallatin::SearchStructure::Veb),
        ("flat_scan", gallatin::SearchStructure::FlatScan),
    ] {
        for heap_mb in [64u64, 512] {
            let a = Gallatin::new(GallatinConfig {
                heap_bytes: heap_mb << 20,
                segment_bytes: 1 << 20,
                slices_per_block: 256,
                search,
                ..Default::default()
            });
            group.bench_with_input(
                BenchmarkId::new(label, format!("{heap_mb}MiB")),
                &heap_mb,
                |b, _| {
                    b.iter(|| {
                        launch_warps(DeviceConfig::with_sms(128), 2048, |warp| {
                            for lane in warp.lanes() {
                                let l = warp.lane(lane);
                                // Whole-block requests stress the index.
                                let p = a.malloc(&l, 8 << 10);
                                if !p.is_null() {
                                    a.free(&l, p);
                                }
                            }
                        });
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
