//! Criterion microbench for E6/E7 (Fig 5): throughput scaling with the
//! number of logical threads at a fixed 16-byte allocation size.

use bench::roster::quick_roster;
use bench::workload::{run_alloc_free, SizeSpec};
use bench::HarnessConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_scaling(c: &mut Criterion) {
    let cfg = HarnessConfig::default();
    cfg.install_pool();
    let roster = quick_roster(256 << 20, cfg.num_sms);
    let mut group = c.benchmark_group("scaling_16B");
    group.sample_size(10);
    for log_threads in [8u32, 11, 14] {
        let threads = 1u64 << log_threads;
        group.throughput(Throughput::Elements(threads));
        for a in &roster {
            group.bench_with_input(
                BenchmarkId::new(format!("2^{log_threads}"), a.name()),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        a.reset();
                        run_alloc_free(
                            a.as_ref(),
                            cfg.device(),
                            threads,
                            SizeSpec::Fixed(16),
                            false,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
