//! Criterion microbench for E15: concurrent vEB tree operation
//! throughput — the §3 claim that single-word atomic nodes give fast,
//! highly concurrent insert/delete/successor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use veb::VebTree;

fn bench_veb(c: &mut Criterion) {
    let _ = rayon::ThreadPoolBuilder::new().num_threads(8).build_global();

    let mut group = c.benchmark_group("veb_ops");
    group.sample_size(20);
    for universe in [4096u64, 262_144, 16_777_216] {
        group.throughput(Throughput::Elements(10_000));
        group.bench_with_input(BenchmarkId::new("insert_remove", universe), &universe, |b, &u| {
            let t = VebTree::new(u);
            b.iter(|| {
                for i in 0..10_000u64 {
                    let x = (i * 2_654_435_761) % u;
                    t.insert(x);
                    t.remove(x);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("successor", universe), &universe, |b, &u| {
            let t = VebTree::new(u);
            for i in (0..u).step_by((u / 1024).max(1) as usize) {
                t.insert(i);
            }
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..10_000u64 {
                    let x = (i * 2_654_435_761) % u;
                    if let Some(s) = t.successor(x) {
                        acc = acc.wrapping_add(s);
                    }
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("claim_reinsert", universe), &universe, |b, &u| {
            let t = VebTree::new_full(u);
            b.iter(|| {
                for _ in 0..10_000 {
                    if let Some(x) = t.claim_first_ge(0) {
                        t.insert(x);
                    }
                }
            });
        });
    }
    group.finish();

    // Concurrent claim throughput: N rayon tasks hammer claim+reinsert.
    let mut group = c.benchmark_group("veb_concurrent_claims");
    group.sample_size(10);
    group.throughput(Throughput::Elements(8 * 2_000));
    group.bench_function("8tasks_x2000", |b| {
        let t = VebTree::new_full(1 << 16);
        b.iter(|| {
            rayon::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|_| {
                        for _ in 0..2_000 {
                            if let Some(x) = t.claim_first_ge(0) {
                                t.insert(x);
                            }
                        }
                    });
                }
            });
        });
    });
    group.finish();
}

criterion_group!(benches, bench_veb);
criterion_main!(benches);
