//! Criterion microbench for E2/E3 (Fig 4a/4b): single-size alloc + free
//! throughput per allocator at a fixed thread count.

use bench::roster::quick_roster;
use bench::workload::{run_alloc_free, SizeSpec};
use bench::HarnessConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_single_size(c: &mut Criterion) {
    let cfg = HarnessConfig::default();
    cfg.install_pool();
    let threads = 8192u64;
    let roster = quick_roster(256 << 20, cfg.num_sms);
    let mut group = c.benchmark_group("single_size_alloc_free");
    group.sample_size(10);
    for size in [16u64, 256, 4096] {
        for a in &roster {
            if !a.supports_size(size) || a.heap_bytes() < threads * size {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("{}B", size), a.name()),
                &size,
                |b, &size| {
                    b.iter(|| {
                        a.reset();
                        run_alloc_free(
                            a.as_ref(),
                            cfg.device(),
                            threads,
                            SizeSpec::Fixed(size),
                            false,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_single_size);
criterion_main!(benches);
