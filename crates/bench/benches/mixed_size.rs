//! Criterion microbench for E4/E5 (Fig 4c/4d): mixed-size alloc + free.

use bench::roster::quick_roster;
use bench::workload::{run_alloc_free, SizeSpec};
use bench::HarnessConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_mixed_size(c: &mut Criterion) {
    let cfg = HarnessConfig::default();
    cfg.install_pool();
    let threads = 8192u64;
    let roster = quick_roster(256 << 20, cfg.num_sms);
    let mut group = c.benchmark_group("mixed_size_alloc_free");
    group.sample_size(10);
    for upper in [64u64, 1024, 4096] {
        for a in &roster {
            if !a.supports_size(upper) || a.heap_bytes() < threads * upper {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("upto{}B", upper), a.name()),
                &upper,
                |b, &upper| {
                    b.iter(|| {
                        a.reset();
                        run_alloc_free(
                            a.as_ref(),
                            cfg.device(),
                            threads,
                            SizeSpec::MixedUpTo(upper),
                            false,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mixed_size);
criterion_main!(benches);
