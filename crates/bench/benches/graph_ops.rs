//! Criterion microbench for E12: graph phases per allocator.

use bench::experiments::graph_bench::graph_phases;
use bench::roster::quick_roster;
use bench::HarnessConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_graph(c: &mut Criterion) {
    let cfg = HarnessConfig::default();
    cfg.install_pool();
    let roster = quick_roster(256 << 20, cfg.num_sms);
    let mut group = c.benchmark_group("graph_phases");
    group.sample_size(10);
    for a in &roster {
        if !a.is_managing() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("all_phases", a.name()), a, |b, a| {
            b.iter(|| graph_phases(a, &cfg, 2048, 8192));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
