//! Offline stand-in for the `rayon` crate (see the workspace
//! `Cargo.toml` for why external dependencies are vendored as shims).
//!
//! Provides the slice of rayon this workspace uses — `into_par_iter()`
//! over integer ranges, `rayon::scope`, and `ThreadPoolBuilder` — on top
//! of `std::thread::scope`. Work is distributed dynamically through a
//! shared atomic cursor, so like real rayon (and like a GPU), the
//! assignment of items to OS threads is timing-dependent and racy
//! interleavings still occur; the deterministic scheduler in `gpu-sim`
//! is the reproducible alternative, not this pool.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Global worker-count override installed by [`ThreadPoolBuilder::build_global`].
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

fn pool_threads() -> usize {
    let n = GLOBAL_THREADS.load(Ordering::Relaxed);
    if n > 0 {
        n
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`; only the global-pool
/// worker count is honoured (thread names are cosmetic).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn thread_name<F: FnMut(usize) -> String>(self, _f: F) -> Self {
        self
    }

    pub fn build_global(self) -> Result<(), Box<dyn std::error::Error>> {
        if self.num_threads > 0 {
            GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Scope mirroring `rayon::scope`: spawned closures run on their own
/// threads and are all joined before `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let handoff = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handoff));
    }
}

pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

pub mod iter {
    use super::*;

    /// A parallel iterator over a half-open integer range.
    pub struct RangeParIter<T> {
        pub(crate) start: T,
        pub(crate) end: T,
    }

    pub trait IntoParallelIterator {
        type Iter;
        fn into_par_iter(self) -> Self::Iter;
    }

    macro_rules! range_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Iter = RangeParIter<$t>;
                fn into_par_iter(self) -> RangeParIter<$t> {
                    RangeParIter { start: self.start, end: self.end }
                }
            }

            impl RangeParIter<$t> {
                /// Run `f` for every item, distributing items over the
                /// pool through a shared atomic cursor.
                pub fn for_each<F>(self, f: F)
                where
                    F: Fn($t) + Sync + Send,
                {
                    let len = self.end.saturating_sub(self.start) as u64;
                    if len == 0 {
                        return;
                    }
                    let workers = (super::pool_threads() as u64).min(len).max(1);
                    if workers == 1 {
                        for i in self.start..self.end {
                            f(i);
                        }
                        return;
                    }
                    let cursor = AtomicU64::new(0);
                    std::thread::scope(|s| {
                        for _ in 0..workers {
                            s.spawn(|| loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= len {
                                    break;
                                }
                                f(self.start + i as $t);
                            });
                        }
                    });
                }
            }
        )*};
    }

    range_par_iter!(u32, u64, usize);
}

pub mod prelude {
    pub use crate::iter::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_for_each_covers_range() {
        let hits: Vec<std::sync::atomic::AtomicU32> =
            (0..100).map(|_| std::sync::atomic::AtomicU32::new(0)).collect();
        (0u64..100).into_par_iter().for_each(|i| {
            hits[i as usize].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
    }

    #[test]
    fn scope_joins_spawns() {
        let total = std::sync::atomic::AtomicU32::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_scope_spawn() {
        let total = std::sync::atomic::AtomicU32::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            });
        });
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 1);
    }
}
