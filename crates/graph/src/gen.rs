//! Workload generators for the graph benchmarks.
//!
//! The paper's graph tests (§6.12) run on real social-network-style
//! graphs; their defining properties are (a) streams of edge updates and
//! (b) heavy degree skew — "the average user vertex has less than 35
//! edges, while the most connected user has over 2.9 million". No graph
//! downloads are available here, so these generators synthesize streams
//! with controlled versions of exactly those properties (see DESIGN.md §1
//! for the substitution argument).

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A batch of edge updates `(src, dst)`.
pub type EdgeBatch = Vec<(u32, u64)>;

/// Uniform stream: every edge picks its source uniformly. Models the
/// benchmark's synthetic update batches.
pub fn uniform_edges(num_vertices: u32, num_edges: usize, seed: u64) -> EdgeBatch {
    assert!(num_vertices > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_edges).map(|_| (rng.gen_range(0..num_vertices), rng.gen::<u64>() >> 16)).collect()
}

/// A sampler for a Zipf(α) distribution over `0..n` built from the
/// inverse CDF (binary search over cumulative weights).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u32, alpha: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }
}

impl Distribution<u32> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

/// Skewed ("Twitter-like") stream: sources are drawn Zipf(α), so a few
/// hub vertices accumulate most edges while the median vertex stays
/// small. `alpha ≈ 1.0` reproduces social-graph-like skew.
pub fn zipf_edges(num_vertices: u32, num_edges: usize, alpha: f64, seed: u64) -> EdgeBatch {
    let zipf = Zipf::new(num_vertices, alpha);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_edges).map(|_| (zipf.sample(&mut rng), rng.gen::<u64>() >> 16)).collect()
}

/// The expansion schedule (§6.12's expansion tests): a sequence of
/// rounds, each inserting `edges_per_round` additional edges, with
/// sources Zipf-skewed so hub edge lists repeatedly double and
/// eventually outgrow chunk-limited allocators' native size. Returns one
/// batch per round.
pub fn expansion_rounds(
    num_vertices: u32,
    rounds: usize,
    edges_per_round: usize,
    alpha: f64,
    seed: u64,
) -> Vec<EdgeBatch> {
    (0..rounds)
        .map(|r| zipf_edges(num_vertices, edges_per_round, alpha, seed.wrapping_add(r as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn uniform_covers_vertex_range() {
        let edges = uniform_edges(100, 10_000, 7);
        assert_eq!(edges.len(), 10_000);
        assert!(edges.iter().all(|&(s, _)| s < 100));
        let distinct: std::collections::HashSet<u32> = edges.iter().map(|&(s, _)| s).collect();
        assert!(distinct.len() > 90, "uniform stream should touch most vertices");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(uniform_edges(50, 100, 3), uniform_edges(50, 100, 3));
        assert_ne!(uniform_edges(50, 100, 3), uniform_edges(50, 100, 4));
        assert_eq!(zipf_edges(50, 100, 1.0, 3), zipf_edges(50, 100, 1.0, 3));
    }

    #[test]
    fn zipf_concentrates_on_hubs() {
        let edges = zipf_edges(10_000, 100_000, 1.0, 11);
        let mut deg: HashMap<u32, u64> = HashMap::new();
        for &(s, _) in &edges {
            *deg.entry(s).or_default() += 1;
        }
        let max = *deg.values().max().unwrap();
        let mean = edges.len() as f64 / 10_000.0;
        // The hub must be orders of magnitude above the mean, as in the
        // Twitter graph the paper cites.
        assert!(max as f64 > 100.0 * mean, "max {max} vs mean {mean}");
        // And vertex 0 (highest Zipf weight) should be the hub.
        let hub = deg.iter().max_by_key(|&(_, &d)| d).map(|(&v, _)| v).unwrap();
        assert!(hub < 5, "hub should be one of the head vertices, got {hub}");
    }

    #[test]
    fn expansion_rounds_have_requested_shape() {
        let rounds = expansion_rounds(1000, 5, 2_000, 0.9, 42);
        assert_eq!(rounds.len(), 5);
        assert!(rounds.iter().all(|b| b.len() == 2_000));
        // Distinct rounds differ (different derived seeds).
        assert_ne!(rounds[0], rounds[1]);
    }

    #[test]
    fn zipf_alpha_zero_is_uniformish() {
        let edges = zipf_edges(1000, 50_000, 0.0, 5);
        let mut deg = vec![0u32; 1000];
        for &(s, _) in &edges {
            deg[s as usize] += 1;
        }
        let max = *deg.iter().max().unwrap() as f64;
        let mean = 50.0;
        assert!(max < 3.0 * mean, "α=0 should be near uniform (max {max})");
    }
}
