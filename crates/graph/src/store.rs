//! The dynamic edge-list graph store.
//!
//! Each vertex owns one device allocation holding its edge list as an
//! array of `u64` destination ids. Lists are sized to the next power of
//! two of their length (as the paper's graph benchmark does), growing by
//! reallocation when full and shrinking when three quarters empty. Every
//! grow/shrink is a `malloc` + copy + `free` against the allocator under
//! test — which is exactly what the benchmark measures.
//!
//! Per-vertex updates are serialized with a spinlock, the standard
//! device-side pattern for edge-list updaters; different vertices update
//! fully in parallel.

use gpu_sim::{DeviceAllocator, DevicePtr, LaneCtx};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Minimum edge-list capacity (entries) for a non-empty vertex.
const MIN_CAP: u64 = 4;

struct Vertex {
    /// Device offset of the edge array, or `DevicePtr::NULL`'s raw value.
    ptr: AtomicU64,
    /// Number of live edges.
    len: AtomicU32,
    /// Capacity in entries (power of two, or 0 when unallocated).
    cap: AtomicU32,
    /// Spinlock guarding structural updates.
    lock: AtomicU32,
}

impl Vertex {
    fn new() -> Self {
        Vertex {
            ptr: AtomicU64::new(DevicePtr::NULL.0),
            len: AtomicU32::new(0),
            cap: AtomicU32::new(0),
            lock: AtomicU32::new(0),
        }
    }
}

/// A guard that releases the vertex spinlock on drop.
struct VertexGuard<'a>(&'a Vertex);

impl<'a> VertexGuard<'a> {
    fn acquire(v: &'a Vertex) -> Self {
        while v.lock.compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed).is_err() {
            std::hint::spin_loop();
        }
        VertexGuard(v)
    }
}

impl Drop for VertexGuard<'_> {
    fn drop(&mut self) {
        self.0.lock.store(0, Ordering::Release);
    }
}

/// A dynamic graph stored as per-vertex edge lists in device memory.
pub struct DynamicGraph<A: DeviceAllocator> {
    alloc: A,
    vertices: Box<[Vertex]>,
    /// Edge insertions that failed because the allocator returned null
    /// (how the benchmark detects allocators failing the workload).
    failed_updates: AtomicU64,
}

impl<A: DeviceAllocator> DynamicGraph<A> {
    /// An empty graph over `num_vertices` vertices.
    pub fn new(num_vertices: usize, alloc: A) -> Self {
        DynamicGraph {
            alloc,
            vertices: (0..num_vertices).map(|_| Vertex::new()).collect(),
            failed_updates: AtomicU64::new(0),
        }
    }

    /// The allocator under test.
    pub fn allocator(&self) -> &A {
        &self.alloc
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Updates that could not be applied due to allocation failure.
    pub fn failed_updates(&self) -> u64 {
        self.failed_updates.load(Ordering::Relaxed)
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> u32 {
        self.vertices[v as usize].len.load(Ordering::Acquire)
    }

    /// Total live edges.
    pub fn num_edges(&self) -> u64 {
        self.vertices.iter().map(|v| v.len.load(Ordering::Acquire) as u64).sum()
    }

    /// Bytes currently held in edge-list allocations (entries × 8, at
    /// power-of-two capacities).
    pub fn edge_bytes(&self) -> u64 {
        self.vertices.iter().map(|v| v.cap.load(Ordering::Acquire) as u64 * 8).sum()
    }

    /// Read vertex `v`'s edge list back to the host.
    pub fn edges(&self, v: u32) -> Vec<u64> {
        let vert = &self.vertices[v as usize];
        let _guard = VertexGuard::acquire(vert);
        let len = vert.len.load(Ordering::Relaxed) as usize;
        let ptr = DevicePtr(vert.ptr.load(Ordering::Relaxed));
        let mut out = vec![0u64; len];
        for (i, e) in out.iter_mut().enumerate() {
            *e = self.alloc.memory().read_stamp(ptr.offset(i as u64 * 8));
        }
        out
    }

    /// Grow or shrink `vert`'s storage to hold `need` entries. Returns
    /// the (possibly unchanged) data pointer, or `None` on allocation
    /// failure. Caller holds the vertex lock.
    fn resize_locked(&self, ctx: &LaneCtx, vert: &Vertex, need: u64) -> Option<DevicePtr> {
        let cap = vert.cap.load(Ordering::Relaxed) as u64;
        let old = DevicePtr(vert.ptr.load(Ordering::Relaxed));
        let new_cap = if need == 0 { 0 } else { need.next_power_of_two().max(MIN_CAP) };
        if new_cap == cap {
            return Some(old);
        }
        if new_cap == 0 {
            if !old.is_null() {
                self.alloc.free(ctx, old);
            }
            vert.ptr.store(DevicePtr::NULL.0, Ordering::Relaxed);
            vert.cap.store(0, Ordering::Relaxed);
            return Some(DevicePtr::NULL);
        }
        let fresh = self.alloc.malloc(ctx, new_cap * 8);
        if fresh.is_null() {
            self.failed_updates.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // Copy the surviving prefix.
        let live = (vert.len.load(Ordering::Relaxed) as u64).min(new_cap);
        let mut buf = vec![0u8; (live * 8) as usize];
        if !old.is_null() && live > 0 {
            self.alloc.memory().read_bytes(old, &mut buf);
            self.alloc.memory().write_bytes(fresh, &buf);
        }
        if !old.is_null() {
            self.alloc.free(ctx, old);
        }
        vert.ptr.store(fresh.0, Ordering::Relaxed);
        vert.cap.store(new_cap as u32, Ordering::Relaxed);
        Some(fresh)
    }

    /// Insert edge `src → dst`. Returns `false` if the allocator could
    /// not provide storage.
    pub fn insert_edge(&self, ctx: &LaneCtx, src: u32, dst: u64) -> bool {
        let vert = &self.vertices[src as usize];
        let _guard = VertexGuard::acquire(vert);
        let len = vert.len.load(Ordering::Relaxed) as u64;
        let cap = vert.cap.load(Ordering::Relaxed) as u64;
        let ptr = if len == cap {
            match self.resize_locked(ctx, vert, len + 1) {
                Some(p) => p,
                None => return false,
            }
        } else {
            DevicePtr(vert.ptr.load(Ordering::Relaxed))
        };
        self.alloc.memory().write_stamp(ptr.offset(len * 8), dst);
        vert.len.store(len as u32 + 1, Ordering::Release);
        true
    }

    /// Delete one occurrence of edge `src → dst` (swap-remove). Returns
    /// whether the edge existed.
    pub fn delete_edge(&self, ctx: &LaneCtx, src: u32, dst: u64) -> bool {
        let vert = &self.vertices[src as usize];
        let _guard = VertexGuard::acquire(vert);
        let len = vert.len.load(Ordering::Relaxed) as u64;
        let ptr = DevicePtr(vert.ptr.load(Ordering::Relaxed));
        let mem = self.alloc.memory();
        for i in 0..len {
            if mem.read_stamp(ptr.offset(i * 8)) == dst {
                let last = mem.read_stamp(ptr.offset((len - 1) * 8));
                mem.write_stamp(ptr.offset(i * 8), last);
                vert.len.store(len as u32 - 1, Ordering::Release);
                // Shrink at quarter occupancy (paper: lists sized to the
                // next power of two of their length).
                let cap = vert.cap.load(Ordering::Relaxed) as u64;
                if len - 1 <= cap / 4 {
                    let _ = self.resize_locked(ctx, vert, len - 1);
                }
                return true;
            }
        }
        false
    }

    /// Release every edge list back to the allocator.
    pub fn destroy(&self, ctx: &LaneCtx) {
        for vert in self.vertices.iter() {
            let _guard = VertexGuard::acquire(vert);
            let ptr = DevicePtr(vert.ptr.load(Ordering::Relaxed));
            if !ptr.is_null() {
                self.alloc.free(ctx, ptr);
                vert.ptr.store(DevicePtr::NULL.0, Ordering::Relaxed);
                vert.len.store(0, Ordering::Relaxed);
                vert.cap.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allocators::CudaHeapSim;
    use gallatin::{Gallatin, GallatinConfig};
    use gpu_sim::{launch, DeviceConfig, WarpCtx};

    fn with_lane<R>(f: impl FnOnce(&LaneCtx) -> R) -> R {
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        f(&warp.lane(0))
    }

    #[test]
    fn insert_and_read_edges() {
        let g = DynamicGraph::new(8, Gallatin::new(GallatinConfig::small_test(1 << 20)));
        with_lane(|l| {
            for d in 0..10u64 {
                assert!(g.insert_edge(l, 3, d * 100));
            }
        });
        assert_eq!(g.degree(3), 10);
        assert_eq!(g.edges(3), (0..10).map(|d| d * 100).collect::<Vec<_>>());
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn growth_keeps_power_of_two_capacity() {
        let g = DynamicGraph::new(2, Gallatin::new(GallatinConfig::small_test(1 << 20)));
        with_lane(|l| {
            for d in 0..100u64 {
                g.insert_edge(l, 0, d);
            }
        });
        let cap = g.vertices[0].cap.load(Ordering::Relaxed);
        assert_eq!(cap, 128);
        assert_eq!(g.edges(0).len(), 100);
        assert_eq!(g.edge_bytes(), 128 * 8);
    }

    #[test]
    fn delete_swaps_and_shrinks() {
        let g = DynamicGraph::new(1, Gallatin::new(GallatinConfig::small_test(1 << 20)));
        with_lane(|l| {
            for d in 0..32u64 {
                g.insert_edge(l, 0, d);
            }
            assert_eq!(g.vertices[0].cap.load(Ordering::Relaxed), 32);
            for d in 0..28u64 {
                assert!(g.delete_edge(l, 0, d));
            }
            assert!(!g.delete_edge(l, 0, 999));
            assert_eq!(g.degree(0), 4);
            assert!(g.vertices[0].cap.load(Ordering::Relaxed) <= 8, "list must shrink");
            let mut rest = g.edges(0);
            rest.sort_unstable();
            assert_eq!(rest, vec![28, 29, 30, 31]);
        });
    }

    #[test]
    fn concurrent_inserts_across_vertices() {
        let g = DynamicGraph::new(64, Gallatin::new(GallatinConfig::small_test(2 << 20)));
        launch(DeviceConfig::with_sms(8), 64 * 32, |l| {
            let v = (l.global_tid() % 64) as u32;
            assert!(g.insert_edge(l, v, l.global_tid()));
        });
        assert_eq!(g.num_edges(), 64 * 32);
        for v in 0..64 {
            assert_eq!(g.degree(v), 32);
        }
    }

    #[test]
    fn concurrent_inserts_same_vertex_serialize() {
        let g = DynamicGraph::new(1, Gallatin::new(GallatinConfig::small_test(2 << 20)));
        launch(DeviceConfig::with_sms(8), 500, |l| {
            assert!(g.insert_edge(l, 0, l.global_tid()));
        });
        let mut edges = g.edges(0);
        edges.sort_unstable();
        assert_eq!(edges, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn allocation_failure_is_reported() {
        // A heap too small for the hub vertex's growth.
        let g = DynamicGraph::new(1, CudaHeapSim::new(4 << 10));
        with_lane(|l| {
            let mut inserted = 0u64;
            for d in 0..10_000u64 {
                if !g.insert_edge(l, 0, d) {
                    break;
                }
                inserted += 1;
            }
            assert!(inserted < 10_000);
            assert!(g.failed_updates() > 0);
        });
    }

    #[test]
    fn destroy_returns_all_memory() {
        let alloc = Gallatin::new(GallatinConfig::small_test(1 << 20));
        let g = DynamicGraph::new(16, alloc);
        with_lane(|l| {
            for v in 0..16u32 {
                for d in 0..20u64 {
                    g.insert_edge(l, v, d);
                }
            }
            g.destroy(l);
        });
        assert_eq!(g.allocator().stats().reserved_bytes, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn works_over_trait_reference() {
        // The graph is generic over &dyn DeviceAllocator too.
        let alloc = Gallatin::new(GallatinConfig::small_test(1 << 20));
        let dyn_ref: &dyn gpu_sim::DeviceAllocator = &alloc;
        let g = DynamicGraph::new(4, dyn_ref);
        with_lane(|l| {
            assert!(g.insert_edge(l, 0, 42));
        });
        assert_eq!(g.edges(0), vec![42]);
    }
}
