//! # graph: dynamic edge-list graphs over a device allocator
//!
//! The Gallatin paper's real-world benchmark (§6.12) integrates each
//! allocator into a dynamic graph workload: graphs are stored as
//! per-vertex edge lists, each list living in a device allocation of the
//! next power-of-two size, growing and shrinking through `malloc`/`free`
//! as edges stream in and out.
//!
//! This crate provides:
//!
//! * [`DynamicGraph`] — the edge-list store, generic over any
//!   [`gpu_sim::DeviceAllocator`];
//! * [`gen`] — workload generators: uniform streams, Zipf/power-law
//!   ("Twitter-like") skewed streams, and the expansion schedule that
//!   drives hub vertices past the 8192-byte chunk limit of queue-based
//!   allocators (§6.12's expansion tests).

#![warn(missing_docs)]

pub mod gen;
pub mod store;

pub use gen::{expansion_rounds, uniform_edges, zipf_edges, EdgeBatch};
pub use store::DynamicGraph;
