//! Bit-level helpers on 64-bit vEB node words.
//!
//! A node word is a bitmap over 64 children: bit `i` is set iff child `i`
//! (or, at the leaf level, item `i`) is present. These helpers are the
//! word-local pieces of successor/predecessor search.

/// Fan-out of every vEB node: one bit per child in a 64-bit word.
pub const WORD_BITS: u64 = 64;

/// Index of the first set bit `>= from` in `word`, if any.
///
/// Any `from` is accepted: `from >= 64` asks for a bit past the word and
/// returns `None`, symmetric with [`first_set_le`]'s handling of the
/// other boundary.
#[inline]
pub fn first_set_ge(word: u64, from: u64) -> Option<u64> {
    if from >= WORD_BITS {
        return None;
    }
    let masked = word & (u64::MAX << from);
    if masked == 0 {
        None
    } else {
        Some(masked.trailing_zeros() as u64)
    }
}

/// Index of the last set bit `<= from` in `word`, if any.
///
/// Any `from` is accepted: `from >= 63` covers the whole word (every set
/// bit is at or below it), symmetric with [`first_set_ge`]'s handling of
/// the other boundary.
#[inline]
pub fn first_set_le(word: u64, from: u64) -> Option<u64> {
    let masked = if from >= WORD_BITS - 1 { word } else { word & ((1u64 << (from + 1)) - 1) };
    if masked == 0 {
        None
    } else {
        Some(WORD_BITS - 1 - masked.leading_zeros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ge_finds_lowest_from_position() {
        let w = 0b1001_0100u64;
        assert_eq!(first_set_ge(w, 0), Some(2));
        assert_eq!(first_set_ge(w, 2), Some(2));
        assert_eq!(first_set_ge(w, 3), Some(4));
        assert_eq!(first_set_ge(w, 5), Some(7));
        assert_eq!(first_set_ge(w, 8), None);
        assert_eq!(first_set_ge(w, 64), None);
    }

    #[test]
    fn le_finds_highest_at_or_below() {
        let w = 0b1001_0100u64;
        assert_eq!(first_set_le(w, 63), Some(7));
        assert_eq!(first_set_le(w, 7), Some(7));
        assert_eq!(first_set_le(w, 6), Some(4));
        assert_eq!(first_set_le(w, 3), Some(2));
        assert_eq!(first_set_le(w, 1), None);
    }

    #[test]
    fn empty_word_has_no_bits() {
        assert_eq!(first_set_ge(0, 0), None);
        assert_eq!(first_set_le(0, 63), None);
    }

    #[test]
    fn full_word_boundaries() {
        assert_eq!(first_set_ge(u64::MAX, 63), Some(63));
        assert_eq!(first_set_le(u64::MAX, 0), Some(0));
        assert_eq!(first_set_ge(1 << 63, 63), Some(63));
        assert_eq!(first_set_le(1, 0), Some(0));
    }

    #[test]
    fn out_of_range_from_is_symmetric() {
        // Past-the-word `from` is valid on both sides: ge finds nothing
        // (no bit is >= 64), le covers the whole word (every bit is <=
        // any from >= 63).
        for from in [64, 65, 100, u64::MAX] {
            assert_eq!(first_set_ge(u64::MAX, from), None);
            assert_eq!(first_set_le(u64::MAX, from), Some(63));
            assert_eq!(first_set_ge(0, from), None);
            assert_eq!(first_set_le(0, from), None);
            assert_eq!(first_set_le(0b1001_0100, from), Some(7));
        }
    }
}
