//! A flat (single-level) atomic bitset with the same claim/search API as
//! [`crate::VebTree`].
//!
//! This is the ablation baseline for the vEB tree: the same leaf bitmap,
//! but with **no summary levels** — searches scan words linearly. For a
//! universe of `u` items a successor search is `O(u/64)` instead of the
//! tree's near-constant walk, which is exactly the cost the paper's
//! hierarchical design removes. The Gallatin allocator can be configured
//! to run on either structure so the difference is measurable end to end.

use crate::wide::{wide_scan_from, WideScan};
use crate::word::{first_set_ge, first_set_le, WORD_BITS};
use std::sync::atomic::{AtomicU64, Ordering};

/// A concurrent flat bitset over `{0, …, universe−1}`.
pub struct FlatBitset {
    universe: u64,
    words: Box<[AtomicU64]>,
}

impl FlatBitset {
    /// An empty set.
    pub fn new(universe: u64) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        let words = universe.div_ceil(WORD_BITS);
        FlatBitset { universe, words: (0..words).map(|_| AtomicU64::new(0)).collect() }
    }

    /// A full set.
    pub fn new_full(universe: u64) -> Self {
        let s = Self::new(universe);
        s.fill();
        s
    }

    /// Universe size.
    #[inline]
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Add `x`; returns whether it was absent.
    pub fn insert(&self, x: u64) -> bool {
        assert!(x < self.universe);
        let prev =
            self.words[(x / WORD_BITS) as usize].fetch_or(1 << (x % WORD_BITS), Ordering::AcqRel);
        prev & (1 << (x % WORD_BITS)) == 0
    }

    /// Remove `x`; returns whether it was present.
    pub fn remove(&self, x: u64) -> bool {
        assert!(x < self.universe);
        let prev = self.words[(x / WORD_BITS) as usize]
            .fetch_and(!(1 << (x % WORD_BITS)), Ordering::AcqRel);
        prev & (1 << (x % WORD_BITS)) != 0
    }

    /// Membership test.
    pub fn contains(&self, x: u64) -> bool {
        assert!(x < self.universe);
        self.words[(x / WORD_BITS) as usize].load(Ordering::Acquire) & (1 << (x % WORD_BITS)) != 0
    }

    /// Exclusive removal (same semantics as `VebTree::claim_exact`).
    pub fn claim_exact(&self, x: u64) -> bool {
        self.remove(x)
    }

    /// Minimum member ≥ `x` (word-parallel linear scan — the flat set
    /// has no hierarchy to fall back to, so the wide kernel runs
    /// unbounded).
    pub fn successor(&self, x: u64) -> Option<u64> {
        if x >= self.universe {
            return None;
        }
        let w = x / WORD_BITS;
        let word = self.words[w as usize].load(Ordering::Acquire);
        if let Some(b) = first_set_ge(word, x % WORD_BITS) {
            let v = w * WORD_BITS + b;
            return (v < self.universe).then_some(v);
        }
        match wide_scan_from(&self.words, w as usize + 1, usize::MAX) {
            WideScan::Hit(wi, v) => {
                let item = wi as u64 * WORD_BITS + v.trailing_zeros() as u64;
                (item < self.universe).then_some(item)
            }
            _ => None,
        }
    }

    /// Minimum member ≥ `start`, wrapping to the front when nothing lies
    /// at or above it — same contract as `VebTree::find_first_from`.
    pub fn find_first_from(&self, start: u64) -> Option<u64> {
        match self.successor(start) {
            Some(s) => Some(s),
            None if start == 0 => None,
            None => self.successor(0),
        }
    }

    /// Maximum member ≤ `x` (linear word scan, backwards).
    pub fn predecessor(&self, x: u64) -> Option<u64> {
        let x = x.min(self.universe - 1);
        let mut w = (x / WORD_BITS) as i64;
        let mut from = x % WORD_BITS;
        while w >= 0 {
            let word = self.words[w as usize].load(Ordering::Acquire);
            if let Some(b) = first_set_le(word, from) {
                return Some(w as u64 * WORD_BITS + b);
            }
            w -= 1;
            from = WORD_BITS - 1;
        }
        None
    }

    /// Find-and-claim the first member ≥ `x`.
    pub fn claim_first_ge(&self, mut x: u64) -> Option<u64> {
        loop {
            let s = self.successor(x)?;
            if self.claim_exact(s) {
                return Some(s);
            }
            x = s + 1;
            if x >= self.universe {
                return None;
            }
        }
    }

    /// Find-and-claim scanning from `start` with wraparound — same
    /// contract as `VebTree::claim_first_from`.
    pub fn claim_first_from(&self, start: u64) -> Option<u64> {
        if let Some(s) = self.claim_first_ge(start) {
            return Some(s);
        }
        if start == 0 {
            None
        } else {
            self.claim_first_ge(0)
        }
    }

    /// Find-and-claim the last member ≤ `x`.
    pub fn claim_last_le(&self, mut x: u64) -> Option<u64> {
        loop {
            let p = self.predecessor(x)?;
            if self.claim_exact(p) {
                return Some(p);
            }
            if p == 0 {
                return None;
            }
            x = p - 1;
        }
    }

    /// Claim `n` contiguous members from the back (first fit from the
    /// end), with per-bit rollback — mirrors
    /// `VebTree::claim_contiguous_from_back`.
    pub fn claim_contiguous_from_back(&self, n: u64) -> Option<u64> {
        assert!(n > 0);
        if n > self.universe {
            return None;
        }
        let mut high = self.universe - 1;
        'outer: loop {
            let end = self.predecessor(high)?;
            if end + 1 < n {
                return None;
            }
            let start = end + 1 - n;
            for i in (start..=end).rev() {
                if !self.contains(i) {
                    if i == 0 {
                        return None;
                    }
                    high = i - 1;
                    continue 'outer;
                }
            }
            let mut claimed = 0u64;
            for i in (start..=end).rev() {
                if self.claim_exact(i) {
                    claimed += 1;
                } else {
                    break;
                }
            }
            if claimed == n {
                return Some(start);
            }
            for i in (end + 1 - claimed)..=end {
                self.insert(i);
            }
            if end == 0 {
                return None;
            }
            high = end - 1;
        }
    }

    /// Insert a contiguous range `[x, x+n)`.
    pub fn insert_range(&self, x: u64, n: u64) {
        for i in x..x + n {
            self.insert(i);
        }
    }

    /// Exact membership count.
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| w.load(Ordering::Acquire).count_ones() as u64).sum()
    }

    /// Set every member. Reset-time only.
    pub fn fill(&self) {
        for (i, w) in self.words.iter().enumerate() {
            let base = i as u64 * WORD_BITS;
            let bits = (self.universe - base).min(WORD_BITS);
            let v = if bits == WORD_BITS { u64::MAX } else { (1u64 << bits) - 1 };
            w.store(v, Ordering::Relaxed);
        }
    }

    /// Clear every member. Reset-time only.
    pub fn clear(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_with_veb_on_random_ops() {
        // The flat set must agree with the vEB tree operation for
        // operation — it is the ablation control.
        let flat = FlatBitset::new(5000);
        let veb = crate::VebTree::new(5000);
        let mut x = 12345u64;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (x >> 16) % 5000;
            match x % 6 {
                0 => assert_eq!(flat.insert(v), veb.insert(v)),
                1 => assert_eq!(flat.remove(v), veb.remove(v)),
                2 => assert_eq!(flat.successor(v), veb.successor(v), "succ({v})"),
                3 => assert_eq!(flat.predecessor(v), veb.predecessor(v), "pred({v})"),
                4 => assert_eq!(flat.find_first_from(v), veb.find_first_from(v), "from({v})"),
                _ => assert_eq!(flat.contains(v), veb.contains(v)),
            }
        }
        assert_eq!(flat.count(), veb.count());
    }

    #[test]
    fn fill_and_contiguous_claims() {
        let s = FlatBitset::new_full(130);
        assert_eq!(s.count(), 130);
        assert_eq!(s.claim_contiguous_from_back(4), Some(126));
        assert_eq!(s.claim_first_ge(0), Some(0));
        assert_eq!(s.claim_last_le(129), Some(125));
        s.insert_range(126, 4);
        assert_eq!(s.count(), (130 - 2));
        s.clear();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn concurrent_claims_exclusive() {
        let s = FlatBitset::new_full(4096);
        let winners: Vec<std::sync::atomic::AtomicU32> =
            (0..4096).map(|_| std::sync::atomic::AtomicU32::new(0)).collect();
        std::thread::scope(|sc| {
            for _ in 0..8 {
                sc.spawn(|| {
                    while let Some(v) = s.claim_first_ge(0) {
                        winners[v as usize].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(winners.iter().all(|w| w.load(Ordering::Relaxed) == 1));
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn partial_last_word_fill_is_exact() {
        let s = FlatBitset::new_full(70);
        assert_eq!(s.count(), 70);
        assert_eq!(s.predecessor(69), Some(69));
        assert_eq!(s.successor(69), Some(69));
        assert_eq!(s.successor(70), None);
    }
}
