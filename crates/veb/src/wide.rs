//! Word-parallel ("wide") scans over flat atomic bitmap levels.
//!
//! A narrow successor search walks the summary hierarchy one
//! `u64::trailing_zeros` at a time — one dependent load per level, each
//! a potential cache miss. When members are *dense enough*, scanning the
//! leaf level directly is faster: the leaf words are contiguous, so the
//! hardware prefetcher streams them, and OR-combining a stride of words
//! before testing lets the branch predictor fall through empty runs.
//!
//! [`wide_scan_from`] is that kernel: a bounded forward scan that loads
//! [`WIDE_STRIDE`] words per iteration, ORs them together, and only
//! inspects individual words when the combined value is non-zero. It
//! reports one of three outcomes (hit / exhausted the level / ran out of
//! budget) so callers can fall back to the hierarchical climb for large
//! sparse universes, where the summary walk wins again.
//!
//! The scan performs only `Acquire` loads — no RMWs — so enabling it
//! never changes the atomic-op *counts* the CI smoke gate pins; it is a
//! pure wall-clock play, A/B-able via `GallatinConfig::wide_veb_scans`
//! (E21).

use std::sync::atomic::{AtomicU64, Ordering};

/// Words OR-combined per scan iteration. Four 64-bit loads fill a cache
/// line on the simulated (and every real) 64-byte-line host; wider
/// strides showed no further gain in the E21 microbench.
pub const WIDE_STRIDE: usize = 4;

/// Default word budget for a bounded wide scan: how far past the query
/// point the leaf level is scanned before handing back to the
/// hierarchical climb. 64 words = 4096 items, one full summary word's
/// span — beyond that the climb resolves the gap in `O(height)` loads
/// instead of `O(gap/64)`.
pub const WIDE_SCAN_BUDGET_WORDS: usize = 64;

/// Outcome of a bounded wide scan over a flat level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WideScan {
    /// First non-empty word in the scanned range: `(word_index, value)`.
    /// The value is the loaded word (non-zero); the caller picks the bit
    /// with `trailing_zeros`.
    Hit(usize, u64),
    /// The range `[from, level.len())` fit inside the budget and held no
    /// set bit. For a leaf level (the set's source of truth) this means
    /// there is no member at or after `from * 64`.
    Exhausted,
    /// The budget ran out before the end of the level. The payload is
    /// the first *unscanned* word index; every word before it was seen
    /// empty.
    Bounded(usize),
}

/// Scan `level[from..]` forward for the first non-zero word, loading at
/// most `budget` words. Loads are `Acquire`, matching the search-side
/// ordering of the narrow path.
///
/// Pass `budget = usize::MAX` for an unbounded scan (the flat-bitset
/// baseline, which has no hierarchy to fall back to).
pub fn wide_scan_from(level: &[AtomicU64], from: usize, budget: usize) -> WideScan {
    let end = level.len().min(from.saturating_add(budget));
    let mut w = from;
    // Near window: members usually sit within a word or two of the
    // query point (dense occupancy), so test the first stride's words
    // individually — an early hit costs 1–2 loads instead of a full
    // OR-combined stride.
    let near_end = end.min(from.saturating_add(WIDE_STRIDE));
    while w < near_end {
        let v = level[w].load(Ordering::Acquire);
        if v != 0 {
            return WideScan::Hit(w, v);
        }
        w += 1;
    }
    // Strided body: OR WIDE_STRIDE words, test once.
    while w + WIDE_STRIDE <= end {
        let a = level[w].load(Ordering::Acquire);
        let b = level[w + 1].load(Ordering::Acquire);
        let c = level[w + 2].load(Ordering::Acquire);
        let d = level[w + 3].load(Ordering::Acquire);
        if a | b | c | d != 0 {
            // Cheap re-derivation: the four values are already in
            // registers; find the first non-zero among them.
            for (i, v) in [a, b, c, d].into_iter().enumerate() {
                if v != 0 {
                    return WideScan::Hit(w + i, v);
                }
            }
            unreachable!("combined word was non-zero");
        }
        w += WIDE_STRIDE;
    }
    // Tail: fewer than WIDE_STRIDE words left in the budgeted range.
    while w < end {
        let v = level[w].load(Ordering::Acquire);
        if v != 0 {
            return WideScan::Hit(w, v);
        }
        w += 1;
    }
    if end == level.len() {
        WideScan::Exhausted
    } else {
        WideScan::Bounded(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(words: &[u64]) -> Vec<AtomicU64> {
        words.iter().map(|&w| AtomicU64::new(w)).collect()
    }

    #[test]
    fn finds_first_nonzero_word() {
        let l = level(&[0, 0, 0, 0, 0, 0b100, 0, 1]);
        assert_eq!(wide_scan_from(&l, 0, usize::MAX), WideScan::Hit(5, 0b100));
        assert_eq!(wide_scan_from(&l, 6, usize::MAX), WideScan::Hit(7, 1));
        assert_eq!(wide_scan_from(&l, 5, usize::MAX), WideScan::Hit(5, 0b100));
    }

    #[test]
    fn exhausted_when_range_is_empty() {
        let l = level(&[0; 9]);
        assert_eq!(wide_scan_from(&l, 0, usize::MAX), WideScan::Exhausted);
        assert_eq!(wide_scan_from(&l, 9, usize::MAX), WideScan::Exhausted);
        // from past the end is a degenerate empty range.
        assert_eq!(wide_scan_from(&l, 100, usize::MAX), WideScan::Exhausted);
    }

    #[test]
    fn budget_bounds_the_scan() {
        let mut words = vec![0u64; 100];
        words[90] = 7;
        let l = level(&words);
        assert_eq!(wide_scan_from(&l, 0, 10), WideScan::Bounded(10));
        // Budget that lands mid-stride still reports the right resume point.
        assert_eq!(wide_scan_from(&l, 0, 7), WideScan::Bounded(7));
        assert_eq!(wide_scan_from(&l, 85, 10), WideScan::Hit(90, 7));
        assert_eq!(wide_scan_from(&l, 0, usize::MAX), WideScan::Hit(90, 7));
        // Saturating budget arithmetic: huge from + huge budget is fine.
        assert_eq!(wide_scan_from(&l, 95, usize::MAX), WideScan::Exhausted);
    }

    #[test]
    fn stride_tail_hits_are_found() {
        // Hits in every position relative to the stride boundary.
        for pos in 0..13usize {
            let mut words = vec![0u64; 13];
            words[pos] = 1 << (pos % 64);
            let l = level(&words);
            assert_eq!(
                wide_scan_from(&l, 0, usize::MAX),
                WideScan::Hit(pos, 1 << (pos % 64)),
                "pos {pos}"
            );
        }
    }
}
