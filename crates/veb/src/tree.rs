//! The concurrent vEB tree proper.

use crate::wide::{wide_scan_from, WideScan, WIDE_SCAN_BUDGET_WORDS};
use crate::word::{first_set_ge, first_set_le, WORD_BITS};
use std::sync::atomic::{AtomicU64, Ordering};

/// A concurrent van Emde Boas tree over a fixed universe `{0, …, u−1}`,
/// with single-`AtomicU64` nodes and 64-ary fan-out (paper §3.2).
///
/// `levels[0]` is the leaf bitmap (one bit per universe item); each higher
/// level summarizes 64 words of the level below; the last level is a
/// single word (the root). See the crate docs for the concurrency model.
///
/// ```
/// use veb::VebTree;
///
/// let t = VebTree::new(1 << 18);
/// t.insert(5);
/// t.insert(70_000);
/// assert_eq!(t.successor(6), Some(70_000));
/// assert_eq!(t.predecessor(69_999), Some(5));
/// // Claims are exclusive: only one caller wins each member.
/// assert_eq!(t.claim_first_ge(0), Some(5));
/// assert!(!t.contains(5));
/// ```
pub struct VebTree {
    universe: u64,
    levels: Vec<Box<[AtomicU64]>>,
    /// When set, successor searches try a bounded word-parallel scan of
    /// the leaf level before climbing the summary hierarchy (see
    /// [`crate::wide`]). Search results are identical either way — the
    /// leaf level is the source of truth — only the load pattern
    /// changes.
    wide: bool,
}

impl VebTree {
    /// An empty tree over `{0, …, universe−1}`, using the classic
    /// hierarchical (narrow) search path.
    ///
    /// # Panics
    /// Panics if `universe == 0`.
    pub fn new(universe: u64) -> Self {
        Self::with_wide(universe, false)
    }

    /// An empty tree with the search strategy chosen explicitly: `wide`
    /// enables the bounded word-parallel leaf scan of [`crate::wide`]
    /// in front of the hierarchical climb.
    ///
    /// # Panics
    /// Panics if `universe == 0`.
    pub fn with_wide(universe: u64, wide: bool) -> Self {
        assert!(universe > 0, "vEB universe must be non-empty");
        let mut levels = Vec::new();
        let mut width = universe;
        loop {
            let words = width.div_ceil(WORD_BITS);
            levels
                .push((0..words).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into_boxed_slice());
            if words == 1 {
                break;
            }
            width = words;
        }
        VebTree { universe, levels, wide }
    }

    /// An empty tree with wide (word-parallel) successor scans enabled.
    pub fn new_wide(universe: u64) -> Self {
        Self::with_wide(universe, true)
    }

    /// A tree with every item of the universe present (Gallatin's segment
    /// tree starts with all segments free).
    pub fn new_full(universe: u64) -> Self {
        let t = Self::new(universe);
        t.fill();
        t
    }

    /// A full tree with wide successor scans enabled.
    pub fn new_full_wide(universe: u64) -> Self {
        let t = Self::new_wide(universe);
        t.fill();
        t
    }

    /// Whether wide (word-parallel) successor scans are enabled.
    #[inline]
    pub fn is_wide(&self) -> bool {
        self.wide
    }

    /// Universe size `u`.
    #[inline]
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Number of levels (root included); `⌈log₆₄ u⌉`, minimum 1.
    #[inline]
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    #[inline]
    fn check_index(&self, x: u64) {
        assert!(x < self.universe, "index {x} outside universe {}", self.universe);
    }

    /// Set every item present and rebuild all summaries. Not thread-safe;
    /// callers quiesce first (used at construction / allocator reset).
    pub fn fill(&self) {
        self.clear();
        for x in 0..self.universe {
            // Leaf-level direct set; summaries rebuilt below.
            let (w, b) = (x / WORD_BITS, x % WORD_BITS);
            let old = self.levels[0][w as usize].load(Ordering::Relaxed);
            self.levels[0][w as usize].store(old | (1 << b), Ordering::Relaxed);
        }
        self.rebuild_summaries();
    }

    /// Remove every item. Not thread-safe (reset-time only).
    pub fn clear(&self) {
        for level in &self.levels {
            for w in level.iter() {
                w.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Recompute every summary level from the leaves. Not thread-safe.
    pub fn rebuild_summaries(&self) {
        for li in 1..self.levels.len() {
            let (lower, upper) = {
                let (a, b) = self.levels.split_at(li);
                (&a[li - 1], &b[0])
            };
            for (wi, word) in upper.iter().enumerate() {
                let mut v = 0u64;
                for bit in 0..WORD_BITS as usize {
                    let child = wi * WORD_BITS as usize + bit;
                    if child < lower.len() && lower[child].load(Ordering::Relaxed) != 0 {
                        v |= 1 << bit;
                    }
                }
                word.store(v, Ordering::Relaxed);
            }
        }
    }

    // ------------------------------------------------------------------
    // Summary propagation
    // ------------------------------------------------------------------

    /// After making leaf word `word_idx` (level 0) non-empty, set summary
    /// bits upward until a level already had the bit.
    fn propagate_set(&self, mut word_idx: u64) {
        for level in 1..self.levels.len() {
            let bit = word_idx % WORD_BITS;
            word_idx /= WORD_BITS;
            let prev = self.levels[level][word_idx as usize].fetch_or(1 << bit, Ordering::AcqRel);
            if prev & (1 << bit) != 0 {
                // Already marked; ancestors must be marked too (or a
                // racing remove will fix them up — see propagate_clear).
                return;
            }
        }
    }

    /// After observing leaf word `word_idx` empty, clear summary bits
    /// upward, re-checking the child after each clear to repair races with
    /// concurrent inserts (the insert may have set the child between our
    /// read and our clear).
    fn propagate_clear(&self, mut word_idx: u64) {
        for level in 1..self.levels.len() {
            let bit = word_idx % WORD_BITS;
            let parent_idx = word_idx / WORD_BITS;
            let child_word = &self.levels[level - 1][word_idx as usize];
            if child_word.load(Ordering::Acquire) != 0 {
                return; // child repopulated; summary bit must stay
            }
            let parent = &self.levels[level][parent_idx as usize];
            let prev = parent.fetch_and(!(1 << bit), Ordering::AcqRel);
            // Re-check: an insert may have set the child *after* our load
            // but *before* our clear, and its propagate_set may have run
            // before our clear (lost update). Repair by re-setting.
            if child_word.load(Ordering::Acquire) != 0 {
                parent.fetch_or(1 << bit, Ordering::AcqRel);
                return;
            }
            if prev & (1 << bit) == 0 {
                return; // bit already clear; ancestors handled elsewhere
            }
            let new_parent = prev & !(1 << bit);
            if new_parent != 0 {
                return; // parent still non-empty; nothing above changes
            }
            word_idx = parent_idx;
        }
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /// Add `x` to the set. Returns `true` if `x` was absent.
    pub fn insert(&self, x: u64) -> bool {
        self.check_index(x);
        let (w, b) = (x / WORD_BITS, x % WORD_BITS);
        let prev = self.levels[0][w as usize].fetch_or(1 << b, Ordering::AcqRel);
        if prev & (1 << b) != 0 {
            return false;
        }
        if prev == 0 {
            self.propagate_set(w);
        } else {
            // Word was non-empty, so summaries should already be set; but
            // a racing remove of the *other* bits may be clearing them
            // right now. propagate_set is idempotent and cheap at this
            // depth, so always ensure the immediate parent is set.
            self.propagate_set(w);
        }
        true
    }

    /// Remove `x` from the set. Returns `true` if `x` was present.
    pub fn remove(&self, x: u64) -> bool {
        self.check_index(x);
        let (w, b) = (x / WORD_BITS, x % WORD_BITS);
        let prev = self.levels[0][w as usize].fetch_and(!(1 << b), Ordering::AcqRel);
        if prev & (1 << b) == 0 {
            return false;
        }
        if prev & !(1 << b) == 0 {
            self.propagate_clear(w);
        }
        true
    }

    /// Whether `x` is in the set.
    pub fn contains(&self, x: u64) -> bool {
        self.check_index(x);
        let (w, b) = (x / WORD_BITS, x % WORD_BITS);
        self.levels[0][w as usize].load(Ordering::Acquire) & (1 << b) != 0
    }

    /// Atomically remove `x` if present. Returns `true` on success —
    /// exclusive among concurrent claimants (Algorithm 1's `claimIndex`).
    pub fn claim_exact(&self, x: u64) -> bool {
        self.check_index(x);
        let (w, b) = (x / WORD_BITS, x % WORD_BITS);
        let prev = self.levels[0][w as usize].fetch_and(!(1 << b), Ordering::AcqRel);
        if prev & (1 << b) == 0 {
            return false;
        }
        if prev & !(1 << b) == 0 {
            self.propagate_clear(w);
        }
        true
    }

    // ------------------------------------------------------------------
    // Searches
    // ------------------------------------------------------------------

    /// The minimum member `≥ x`, or `None`. `x` may equal the universe
    /// size (returns `None`), which simplifies "next after last" loops.
    pub fn successor(&self, x: u64) -> Option<u64> {
        if x >= self.universe {
            return None;
        }
        // Fast path: within x's own leaf word.
        let word_idx = x / WORD_BITS;
        let leaf = self.levels[0][word_idx as usize].load(Ordering::Acquire);
        if let Some(b) = first_set_ge(leaf, x % WORD_BITS) {
            return Some(word_idx * WORD_BITS + b);
        }
        if self.wide {
            // Word-parallel path: stream the next WIDE_SCAN_BUDGET_WORDS
            // leaf words before paying for the summary climb. The leaf
            // level is the source of truth, so a hit is a member and an
            // exhausted scan is a definitive None; only a budget overrun
            // defers to the hierarchy (resume - 1 is the last word the
            // scan saw empty; the climb searches strictly after it).
            match wide_scan_from(&self.levels[0], word_idx as usize + 1, WIDE_SCAN_BUDGET_WORDS) {
                WideScan::Hit(w, v) => {
                    return Some(w as u64 * WORD_BITS + v.trailing_zeros() as u64)
                }
                WideScan::Exhausted => return None,
                WideScan::Bounded(resume) => return self.climb_successor(resume as u64 - 1),
            }
        }
        self.climb_successor(word_idx)
    }

    /// Hierarchical successor: find the first member in a leaf word
    /// *strictly after* `word_idx`, assuming leaf word `word_idx` (and
    /// anything before it the caller scanned) holds no answer.
    fn climb_successor(&self, mut word_idx: u64) -> Option<u64> {
        // Climb until a summary shows a non-empty word strictly after
        // word_idx, then descend; on stale summaries, skip the subtree.
        'restart: loop {
            let mut level = 1;
            let mut idx = word_idx; // bit index at `level`
            loop {
                if level >= self.levels.len() {
                    return None;
                }
                let word = self.levels[level][(idx / WORD_BITS) as usize].load(Ordering::Acquire);
                if let Some(b) = first_set_ge(word, (idx % WORD_BITS) + 1) {
                    // Descend from (level, word (idx/64), bit b).
                    let mut child = (idx / WORD_BITS) * WORD_BITS + b;
                    let mut l = level;
                    while l > 0 {
                        let w = self.levels[l - 1][child as usize].load(Ordering::Acquire);
                        match first_set_ge(w, 0) {
                            Some(bit) => {
                                if l == 1 {
                                    return Some(child * WORD_BITS + bit);
                                }
                                child = child * WORD_BITS + bit;
                                l -= 1;
                            }
                            None => {
                                // Stale summary: subtree empty. Skip past
                                // it and restart from there.
                                let span = WORD_BITS.pow(l as u32 - 1);
                                let next_item = (child + 1) * span * WORD_BITS;
                                if next_item >= self.universe {
                                    return None;
                                }
                                word_idx = next_item / WORD_BITS;
                                let leaf =
                                    self.levels[0][word_idx as usize].load(Ordering::Acquire);
                                if let Some(b) = first_set_ge(leaf, 0) {
                                    return Some(word_idx * WORD_BITS + b);
                                }
                                continue 'restart;
                            }
                        }
                    }
                    unreachable!("descent terminates at level 1");
                }
                // No member in this level's word after idx; climb.
                idx /= WORD_BITS;
                level += 1;
            }
        }
    }

    /// The minimum member `≥ start`, wrapping to the front of the
    /// universe when nothing lies at or above `start`.
    ///
    /// This is `successor` with a *probe hint*: callers that only need
    /// "any member" (Gallatin's segment and block queries, §4.3 of the
    /// paper) can start the scan at an SM-hashed position so concurrent
    /// warps fan out across different words instead of all reading —
    /// and then CAS-hammering — bit 0. `find_first_from(0)` is exactly
    /// `successor(0)`, so a zero hint preserves the legacy front-first
    /// order. Returns `None` only if both halves of the wrapped scan
    /// come up empty.
    pub fn find_first_from(&self, start: u64) -> Option<u64> {
        match self.successor(start) {
            Some(s) => Some(s),
            None if start == 0 => None,
            None => self.successor(0),
        }
    }

    /// The maximum member `≤ x`, or `None`. `x` is clamped to the
    /// universe.
    pub fn predecessor(&self, x: u64) -> Option<u64> {
        let x = x.min(self.universe - 1);
        let mut word_idx = x / WORD_BITS;
        let leaf = self.levels[0][word_idx as usize].load(Ordering::Acquire);
        if let Some(b) = first_set_le(leaf, x % WORD_BITS) {
            return Some(word_idx * WORD_BITS + b);
        }
        'restart: loop {
            let mut level = 1;
            let mut idx = word_idx;
            loop {
                if level >= self.levels.len() {
                    return None;
                }
                let word = self.levels[level][(idx / WORD_BITS) as usize].load(Ordering::Acquire);
                let within = idx % WORD_BITS;
                let found = if within == 0 { None } else { first_set_le(word, within - 1) };
                if let Some(b) = found {
                    let mut child = (idx / WORD_BITS) * WORD_BITS + b;
                    let mut l = level;
                    while l > 0 {
                        let w = self.levels[l - 1][child as usize].load(Ordering::Acquire);
                        match first_set_le(w, WORD_BITS - 1) {
                            Some(bit) => {
                                if l == 1 {
                                    return Some(child * WORD_BITS + bit);
                                }
                                child = child * WORD_BITS + bit;
                                l -= 1;
                            }
                            None => {
                                // Stale summary: skip below this subtree.
                                let span = WORD_BITS.pow(l as u32 - 1);
                                let first_item = child * span * WORD_BITS;
                                if first_item == 0 {
                                    return None;
                                }
                                let prev_item = first_item - 1;
                                word_idx = prev_item / WORD_BITS;
                                let leaf =
                                    self.levels[0][word_idx as usize].load(Ordering::Acquire);
                                if let Some(b) = first_set_le(leaf, prev_item % WORD_BITS) {
                                    return Some(word_idx * WORD_BITS + b);
                                }
                                continue 'restart;
                            }
                        }
                    }
                    unreachable!("descent terminates at level 1");
                }
                idx /= WORD_BITS;
                level += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Claims
    // ------------------------------------------------------------------

    /// Find and atomically remove the minimum member `≥ x`. This is the
    /// segment-allocation primitive of Algorithm 1: successor search plus
    /// a CAS-style claim, retried when another thread wins the race.
    pub fn claim_first_ge(&self, mut x: u64) -> Option<u64> {
        loop {
            let s = self.successor(x)?;
            if self.claim_exact(s) {
                return Some(s);
            }
            // Lost the race for s; resume the scan just past it. Another
            // thread may insert below s later, but a linearizable claim
            // only promises a member that was present at some point during
            // the call.
            x = s + 1;
            if x >= self.universe {
                return None;
            }
        }
    }

    /// Find and atomically remove a member, scanning from `start` and
    /// wrapping to the front when `[start, u)` is exhausted. The claim
    /// analogue of [`Self::find_first_from`]: it keeps the "find any
    /// free" contract of [`Self::claim_first_ge`]`(0)` (some member is
    /// returned iff one stays visible for the whole call) while letting
    /// concurrent claimants start in different words. The wrapped pass
    /// rescans the full universe, so members that appear above `start`
    /// after the first pass loses a race are still eligible.
    pub fn claim_first_from(&self, start: u64) -> Option<u64> {
        if let Some(s) = self.claim_first_ge(start) {
            return Some(s);
        }
        if start == 0 {
            None
        } else {
            self.claim_first_ge(0)
        }
    }

    /// Find and atomically remove the maximum member `≤ x`.
    pub fn claim_last_le(&self, mut x: u64) -> Option<u64> {
        loop {
            let p = self.predecessor(x)?;
            if self.claim_exact(p) {
                return Some(p);
            }
            if p == 0 {
                return None;
            }
            x = p - 1;
        }
    }

    /// Claim `n` *contiguous* members scanning from the back of the
    /// universe (first fit from the end — how Gallatin places
    /// multi-segment allocations, §4.1). Returns the first index of the
    /// run. Claims are per-bit atomic with rollback, so concurrent
    /// claimants never overlap.
    pub fn claim_contiguous_from_back(&self, n: u64) -> Option<u64> {
        assert!(n > 0, "contiguous claim of zero items");
        if n > self.universe {
            return None;
        }
        let mut high = self.universe - 1;
        'outer: loop {
            // Find the highest member ≤ high; a run must end at a member.
            let end = self.predecessor(high)?;
            if end + 1 < n {
                return None;
            }
            let start = end + 1 - n;
            // Check the whole candidate run is present before claiming.
            // Scan from the top so the first gap found is the highest one;
            // the next candidate run must end strictly below that gap.
            for i in (start..=end).rev() {
                if !self.contains(i) {
                    if i == 0 {
                        return None;
                    }
                    high = i - 1;
                    continue 'outer;
                }
            }
            // Claim bits from the end downward; roll back on conflict.
            let mut claimed = 0u64;
            let mut conflict = false;
            for i in (start..=end).rev() {
                if self.claim_exact(i) {
                    claimed += 1;
                } else {
                    conflict = true;
                    break;
                }
            }
            if !conflict {
                return Some(start);
            }
            // Roll back what we claimed (the top `claimed` items).
            for i in (end + 1 - claimed)..=end {
                self.insert(i);
            }
            if end == 0 {
                return None;
            }
            high = end - 1;
        }
    }

    /// Insert the `n` contiguous members `[x, x+n)` (returning a
    /// multi-segment allocation to the tree).
    pub fn insert_range(&self, x: u64, n: u64) {
        for i in x..x + n {
            self.insert(i);
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Exact number of members (linear scan of leaves; test/metric use).
    pub fn count(&self) -> u64 {
        self.levels[0].iter().map(|w| w.load(Ordering::Acquire).count_ones() as u64).sum()
    }

    /// Whether the set is empty (leaf scan; exact).
    pub fn is_empty(&self) -> bool {
        self.levels[0].iter().all(|w| w.load(Ordering::Acquire) == 0)
    }

    /// First member, if any.
    pub fn first(&self) -> Option<u64> {
        self.successor(0)
    }

    /// Last member, if any.
    pub fn last(&self) -> Option<u64> {
        self.predecessor(self.universe - 1)
    }

    /// Iterate the members in ascending order via successor search.
    ///
    /// The iterator is a sequence of `successor` calls, so under
    /// concurrent mutation it sees a *traversal-consistent* view: every
    /// member present for the whole traversal is yielded; members
    /// inserted or removed mid-way may or may not appear.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        let mut next = Some(0u64);
        std::iter::from_fn(move || {
            let start = next?;
            match self.successor(start) {
                Some(v) => {
                    next = (v + 1 < self.universe).then_some(v + 1);
                    Some(v)
                }
                None => {
                    next = None;
                    None
                }
            }
        })
    }

    /// Verify that every summary bit is consistent with the level below.
    /// Quiescent-state check used by tests.
    pub fn check_summaries(&self) -> Result<(), String> {
        for li in 1..self.levels.len() {
            for (wi, word) in self.levels[li].iter().enumerate() {
                let v = word.load(Ordering::Acquire);
                for bit in 0..WORD_BITS as usize {
                    let child = wi * WORD_BITS as usize + bit;
                    if child >= self.levels[li - 1].len() {
                        if v & (1 << bit) != 0 {
                            return Err(format!(
                                "level {li} word {wi} bit {bit}: set beyond child range"
                            ));
                        }
                        continue;
                    }
                    let child_nonempty = self.levels[li - 1][child].load(Ordering::Acquire) != 0;
                    let bit_set = v & (1 << bit) != 0;
                    if child_nonempty != bit_set {
                        return Err(format!(
                            "level {li} word {wi} bit {bit}: summary={bit_set} child_nonempty={child_nonempty}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for VebTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VebTree")
            .field("universe", &self.universe)
            .field("height", &self.height())
            .field("count", &self.count())
            .field("wide", &self.wide)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heights_match_universe() {
        assert_eq!(VebTree::new(1).height(), 1);
        assert_eq!(VebTree::new(64).height(), 1);
        assert_eq!(VebTree::new(65).height(), 2);
        assert_eq!(VebTree::new(4096).height(), 2);
        assert_eq!(VebTree::new(4097).height(), 3);
        assert_eq!(VebTree::new(262_144).height(), 3);
        assert_eq!(VebTree::new(16_777_216).height(), 4);
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let t = VebTree::new(500);
        assert!(!t.contains(123));
        assert!(t.insert(123));
        assert!(!t.insert(123));
        assert!(t.contains(123));
        assert!(t.remove(123));
        assert!(!t.remove(123));
        assert!(!t.contains(123));
        t.check_summaries().unwrap();
    }

    #[test]
    fn successor_walks_members_in_order() {
        let t = VebTree::new(100_000);
        let members = [0u64, 1, 63, 64, 65, 4095, 4096, 4097, 50_000, 99_999];
        for &m in &members {
            t.insert(m);
        }
        let mut found = Vec::new();
        let mut x = 0;
        while let Some(s) = t.successor(x) {
            found.push(s);
            x = s + 1;
        }
        assert_eq!(found, members);
        t.check_summaries().unwrap();
    }

    #[test]
    fn predecessor_walks_members_in_reverse() {
        let t = VebTree::new(100_000);
        let members = [0u64, 63, 64, 4095, 4096, 99_999];
        for &m in &members {
            t.insert(m);
        }
        let mut found = Vec::new();
        let mut x = t.universe() - 1;
        while let Some(p) = t.predecessor(x) {
            found.push(p);
            if p == 0 {
                break;
            }
            x = p - 1;
        }
        let mut expect = members.to_vec();
        expect.reverse();
        assert_eq!(found, expect);
    }

    #[test]
    fn successor_of_member_is_itself() {
        let t = VebTree::new(1000);
        t.insert(500);
        assert_eq!(t.successor(500), Some(500));
        assert_eq!(t.successor(501), None);
        assert_eq!(t.predecessor(500), Some(500));
        assert_eq!(t.predecessor(499), None);
    }

    #[test]
    fn empty_tree_has_no_members() {
        let t = VebTree::new(70_000);
        assert_eq!(t.successor(0), None);
        assert_eq!(t.predecessor(69_999), None);
        assert!(t.is_empty());
        assert_eq!(t.count(), 0);
        assert_eq!(t.first(), None);
        assert_eq!(t.last(), None);
    }

    #[test]
    fn full_tree_finds_everything() {
        let t = VebTree::new_full(10_000);
        assert_eq!(t.count(), 10_000);
        assert_eq!(t.successor(0), Some(0));
        assert_eq!(t.successor(9_999), Some(9_999));
        assert_eq!(t.predecessor(9_999), Some(9_999));
        t.check_summaries().unwrap();
    }

    #[test]
    fn claim_exact_is_exclusive() {
        let t = VebTree::new(128);
        t.insert(100);
        assert!(t.claim_exact(100));
        assert!(!t.claim_exact(100));
        assert!(!t.contains(100));
    }

    #[test]
    fn claim_first_ge_takes_lowest() {
        let t = VebTree::new(1 << 14);
        for m in [10u64, 20, 30] {
            t.insert(m);
        }
        assert_eq!(t.claim_first_ge(0), Some(10));
        assert_eq!(t.claim_first_ge(0), Some(20));
        assert_eq!(t.claim_first_ge(25), Some(30));
        assert_eq!(t.claim_first_ge(0), None);
    }

    #[test]
    fn find_first_from_wraps_to_front() {
        let t = VebTree::new(1 << 14);
        for m in [10u64, 2000] {
            t.insert(m);
        }
        assert_eq!(t.find_first_from(0), Some(10));
        assert_eq!(t.find_first_from(10), Some(10));
        assert_eq!(t.find_first_from(11), Some(2000));
        // Nothing at or above the hint: wrap to the front.
        assert_eq!(t.find_first_from(2001), Some(10));
        assert_eq!(t.find_first_from(t.universe() - 1), Some(10));
        assert_eq!(VebTree::new(64).find_first_from(0), None);
        assert_eq!(VebTree::new(64).find_first_from(63), None);
    }

    #[test]
    fn claim_first_from_wraps_and_is_exclusive() {
        let t = VebTree::new(1 << 14);
        for m in [10u64, 20, 2000] {
            t.insert(m);
        }
        assert_eq!(t.claim_first_from(1000), Some(2000));
        assert_eq!(t.claim_first_from(1000), Some(10)); // wrapped
        assert_eq!(t.claim_first_from(0), Some(20));
        assert_eq!(t.claim_first_from(0), None);
        assert_eq!(t.claim_first_from(5000), None);
        assert!(t.is_empty());
        t.check_summaries().unwrap();
    }

    #[test]
    fn claim_last_le_takes_highest() {
        let t = VebTree::new(1 << 14);
        for m in [10u64, 20, 30] {
            t.insert(m);
        }
        assert_eq!(t.claim_last_le(t.universe() - 1), Some(30));
        assert_eq!(t.claim_last_le(t.universe() - 1), Some(20));
        assert_eq!(t.claim_last_le(15), Some(10));
        assert_eq!(t.claim_last_le(t.universe() - 1), None);
    }

    #[test]
    fn contiguous_claim_from_back() {
        let t = VebTree::new_full(256);
        assert_eq!(t.claim_contiguous_from_back(4), Some(252));
        assert_eq!(t.claim_contiguous_from_back(4), Some(248));
        assert_eq!(t.count(), 248);
        // Fragment the back: remove 240, runs must now fit below it.
        t.claim_exact(240);
        assert_eq!(t.claim_contiguous_from_back(8), Some(232));
        t.check_summaries().unwrap();
    }

    #[test]
    fn contiguous_claim_too_large_fails_cleanly() {
        let t = VebTree::new_full(64);
        assert_eq!(t.claim_contiguous_from_back(65), None);
        assert_eq!(t.count(), 64);
        assert_eq!(t.claim_contiguous_from_back(64), Some(0));
        assert_eq!(t.count(), 0);
        assert_eq!(t.claim_contiguous_from_back(1), None);
    }

    #[test]
    fn insert_range_restores_runs() {
        let t = VebTree::new_full(128);
        let start = t.claim_contiguous_from_back(16).unwrap();
        assert_eq!(t.count(), 112);
        t.insert_range(start, 16);
        assert_eq!(t.count(), 128);
        t.check_summaries().unwrap();
    }

    #[test]
    fn non_power_of_64_universe_edges() {
        let t = VebTree::new(100);
        t.insert(99);
        assert_eq!(t.successor(0), Some(99));
        assert_eq!(t.predecessor(99), Some(99));
        assert_eq!(t.successor(100), None);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_range_insert_panics() {
        VebTree::new(100).insert(100);
    }

    #[test]
    fn iter_yields_members_in_order() {
        let t = VebTree::new(100_000);
        let members = [3u64, 64, 65, 4096, 99_999];
        for &m in &members {
            t.insert(m);
        }
        let collected: Vec<u64> = t.iter().collect();
        assert_eq!(collected, members);
        assert_eq!(VebTree::new(10).iter().count(), 0);
        let full = VebTree::new_full(130);
        assert_eq!(full.iter().count(), 130);
        assert_eq!(full.iter().last(), Some(129));
    }

    // Wide/narrow search parity lives in tests/wide_parity.rs: it only
    // exercises the public API, and keeping it out of this file keeps
    // tree.rs under the LOC gate.

    #[test]
    fn clear_and_fill_are_inverses() {
        let t = VebTree::new(5000);
        t.fill();
        assert_eq!(t.count(), 5000);
        t.clear();
        assert!(t.is_empty());
        t.check_summaries().unwrap();
    }
}
