//! # veb: a highly concurrent van Emde Boas tree
//!
//! This crate implements the van Emde Boas (vEB) tree variant at the heart
//! of the Gallatin GPU memory manager (PPoPP 2024, §3). It maintains a set
//! `S ⊆ {0, …, u−1}` over a fixed universe `u` and supports concurrent:
//!
//! * [`VebTree::insert`] / [`VebTree::remove`] / [`VebTree::contains`]
//! * [`VebTree::successor`] / [`VebTree::predecessor`]
//! * [`VebTree::claim_first_ge`] — find-and-atomically-remove the first
//!   member `≥ x` (how Gallatin claims the lowest free segment),
//! * [`VebTree::claim_exact`] — atomically remove a specific member
//!   (Algorithm 1's `claimIndex`),
//! * [`VebTree::claim_contiguous_from_back`] — claim a run of `n`
//!   consecutive members scanning from the top of the universe (how
//!   Gallatin serves multi-segment allocations from the back of memory).
//!
//! ## Departures from the textbook structure, as in the paper
//!
//! The classic vEB node stores a min, a max, and a √u-wide summary, giving
//! `O(log log u)` operations — but such nodes cannot be read or written
//! atomically. Following the paper (§3.2), every node here is a **single
//! 64-bit word**: a bitmap over 64 children, manipulated with one atomic
//! instruction (`fetch_or` / `fetch_and`). Min/max are dropped. The tree
//! has fixed 64-ary fan-out, so its height is `⌈log₆₄ u⌉` — a small
//! constant for any practical universe (4 levels cover 16.7 M items; at
//! Gallatin's 16 MB segments that is 256 TB of device memory).
//!
//! ## Concurrency model
//!
//! The **leaf bitmap is the source of truth**; the linearization point of
//! every mutation is a single atomic RMW on a leaf word. Upper-level
//! summary words are maintained best-effort (one atomic per level, with a
//! re-check/fix-up step to repair insert/remove races), so searches may
//! transiently observe a summary bit without members below it, or miss a
//! member whose insert has not finished propagating. Searches therefore
//! *skip* subtrees that turn out empty and keep scanning — they never
//! trust a summary over a leaf. Claim operations re-validate at the leaf
//! with an atomic RMW, so a successful claim is always exclusive.
//!
//! These are exactly the semantics a memory allocator needs: a missed
//! concurrent insert just means "allocate a fresh segment instead", never
//! a correctness violation; a claim can never hand the same segment to two
//! threads.

#![warn(missing_docs)]

mod flat;
mod tree;
pub mod wide;
mod word;

pub use flat::FlatBitset;
pub use tree::VebTree;
pub use wide::{wide_scan_from, WideScan, WIDE_SCAN_BUDGET_WORDS, WIDE_STRIDE};
pub use word::{first_set_ge, first_set_le, WORD_BITS};
