//! Model-based property tests: the concurrent vEB tree must agree with a
//! `BTreeSet` under any single-threaded operation sequence.

use proptest::prelude::*;
use std::collections::BTreeSet;
use veb::VebTree;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
    Successor(u64),
    Predecessor(u64),
    ClaimFirstGe(u64),
    ClaimLastLe(u64),
}

fn op_strategy(universe: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..universe).prop_map(Op::Insert),
        (0..universe).prop_map(Op::Remove),
        (0..universe).prop_map(Op::Contains),
        (0..universe).prop_map(Op::Successor),
        (0..universe).prop_map(Op::Predecessor),
        (0..universe).prop_map(Op::ClaimFirstGe),
        (0..universe).prop_map(Op::ClaimLastLe),
    ]
}

fn model_successor(model: &BTreeSet<u64>, x: u64) -> Option<u64> {
    model.range(x..).next().copied()
}

fn model_predecessor(model: &BTreeSet<u64>, x: u64) -> Option<u64> {
    model.range(..=x).next_back().copied()
}

fn run_model(universe: u64, ops: Vec<Op>) {
    let tree = VebTree::new(universe);
    let mut model = BTreeSet::new();
    for op in ops {
        match op {
            Op::Insert(x) => {
                assert_eq!(tree.insert(x), model.insert(x), "insert({x})");
            }
            Op::Remove(x) => {
                assert_eq!(tree.remove(x), model.remove(&x), "remove({x})");
            }
            Op::Contains(x) => {
                assert_eq!(tree.contains(x), model.contains(&x), "contains({x})");
            }
            Op::Successor(x) => {
                assert_eq!(tree.successor(x), model_successor(&model, x), "successor({x})");
            }
            Op::Predecessor(x) => {
                assert_eq!(tree.predecessor(x), model_predecessor(&model, x), "predecessor({x})");
            }
            Op::ClaimFirstGe(x) => {
                let expect = model_successor(&model, x);
                assert_eq!(tree.claim_first_ge(x), expect, "claim_first_ge({x})");
                if let Some(v) = expect {
                    model.remove(&v);
                }
            }
            Op::ClaimLastLe(x) => {
                let expect = model_predecessor(&model, x);
                assert_eq!(tree.claim_last_le(x), expect, "claim_last_le({x})");
                if let Some(v) = expect {
                    model.remove(&v);
                }
            }
        }
    }
    assert_eq!(tree.count(), model.len() as u64);
    tree.check_summaries().unwrap();
}

fn run_model_flat(universe: u64, ops: Vec<Op>) {
    let set = veb::FlatBitset::new(universe);
    let mut model = BTreeSet::new();
    for op in ops {
        match op {
            Op::Insert(x) => {
                assert_eq!(set.insert(x), model.insert(x));
            }
            Op::Remove(x) => {
                assert_eq!(set.remove(x), model.remove(&x));
            }
            Op::Contains(x) => {
                assert_eq!(set.contains(x), model.contains(&x));
            }
            Op::Successor(x) => {
                assert_eq!(set.successor(x), model_successor(&model, x));
            }
            Op::Predecessor(x) => {
                assert_eq!(set.predecessor(x), model_predecessor(&model, x));
            }
            Op::ClaimFirstGe(x) => {
                let expect = model_successor(&model, x);
                assert_eq!(set.claim_first_ge(x), expect);
                if let Some(v) = expect {
                    model.remove(&v);
                }
            }
            Op::ClaimLastLe(x) => {
                let expect = model_predecessor(&model, x);
                assert_eq!(set.claim_last_le(x), expect);
                if let Some(v) = expect {
                    model.remove(&v);
                }
            }
        }
    }
    assert_eq!(set.count(), model.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn small_universe_matches_model(ops in prop::collection::vec(op_strategy(200), 1..400)) {
        run_model(200, ops);
    }

    #[test]
    fn flat_bitset_matches_model(ops in prop::collection::vec(op_strategy(3000), 1..300)) {
        run_model_flat(3000, ops);
    }

    #[test]
    fn two_level_universe_matches_model(ops in prop::collection::vec(op_strategy(4096), 1..300)) {
        run_model(4096, ops);
    }

    #[test]
    fn three_level_universe_matches_model(ops in prop::collection::vec(op_strategy(300_000), 1..200)) {
        run_model(300_000, ops);
    }

    #[test]
    fn contiguous_claims_are_disjoint_runs(
        sizes in prop::collection::vec(1u64..12, 1..30),
    ) {
        let universe = 2048u64;
        let tree = VebTree::new_full(universe);
        let mut claimed: Vec<(u64, u64)> = Vec::new();
        for n in sizes {
            if let Some(start) = tree.claim_contiguous_from_back(n) {
                // Run must be in-range and previously unclaimed.
                prop_assert!(start + n <= universe);
                for &(s, m) in &claimed {
                    prop_assert!(start + n <= s || s + m <= start,
                        "runs overlap: [{start},{}) vs [{s},{})", start + n, s + m);
                }
                claimed.push((start, n));
            }
        }
        let total: u64 = claimed.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(tree.count(), universe - total);
    }
}
