//! Black-box parity between the wide (word-parallel) and narrow
//! (hierarchical) successor-search strategies.
//!
//! The wide scan is a pure load-pattern change: on identical trees,
//! every search and claim must return exactly what the hierarchical
//! path returns, because the leaf level is the source of truth either
//! way. These tests drive both strategies through the public API and
//! demand bit-identical answers.

use veb::VebTree;

#[test]
fn wide_and_narrow_searches_agree() {
    // Universe is big enough (3 levels) that the wide path exercises
    // Hit, Exhausted, and Bounded.
    let narrow = VebTree::new(1 << 16);
    let wide = VebTree::new_wide(1 << 16);
    assert!(wide.is_wide() && !narrow.is_wide());
    let mut x = 99u64;
    for _ in 0..6000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let v = (x >> 16) % (1 << 16);
        match x % 6 {
            0 => assert_eq!(narrow.insert(v), wide.insert(v)),
            1 => assert_eq!(narrow.remove(v), wide.remove(v)),
            2 => assert_eq!(narrow.successor(v), wide.successor(v), "succ({v})"),
            3 => assert_eq!(narrow.find_first_from(v), wide.find_first_from(v), "from({v})"),
            4 => assert_eq!(narrow.claim_first_ge(v), wide.claim_first_ge(v), "claim({v})"),
            _ => assert_eq!(narrow.predecessor(v), wide.predecessor(v), "pred({v})"),
        }
    }
    assert_eq!(narrow.count(), wide.count());
    narrow.check_summaries().unwrap();
    wide.check_summaries().unwrap();
}

#[test]
fn wide_sparse_universe_falls_back_to_climb() {
    // One member far past the wide budget (64 words = 4096 items):
    // the scan must hand off to the climb and still find it.
    let t = VebTree::new_wide(1 << 18);
    t.insert((1 << 18) - 1);
    assert_eq!(t.successor(0), Some((1 << 18) - 1));
    assert_eq!(t.successor((1 << 18) - 1), Some((1 << 18) - 1));
    t.remove((1 << 18) - 1);
    assert_eq!(t.successor(0), None);
    // new_full_wide: everything present, scans hit immediately.
    let full = VebTree::new_full_wide(1 << 13);
    assert_eq!(full.count(), 1 << 13);
    assert_eq!(full.successor(4097), Some(4097));
}
