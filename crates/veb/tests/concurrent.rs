//! Concurrent stress tests for the vEB tree: exclusivity of claims and
//! eventual consistency of summaries under heavy contention.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use veb::VebTree;

#[test]
fn concurrent_claims_are_exclusive() {
    // N threads race to claim from a full tree; every item must be won by
    // exactly one claimant.
    let universe = 1u64 << 14;
    let tree = VebTree::new_full(universe);
    let winners: Vec<AtomicU64> = (0..universe).map(|_| AtomicU64::new(0)).collect();

    (0..universe).into_par_iter().for_each(|_| {
        if let Some(x) = tree.claim_first_ge(0) {
            winners[x as usize].fetch_add(1, Ordering::Relaxed);
        }
    });

    assert!(tree.is_empty());
    for (i, w) in winners.iter().enumerate() {
        assert_eq!(w.load(Ordering::Relaxed), 1, "item {i} claimed wrong number of times");
    }
}

#[test]
fn concurrent_insert_remove_storm_converges() {
    // Threads hammer disjoint-and-overlapping ranges with inserts and
    // removes; afterwards the leaf truth must match a replayed model and
    // summaries must be repaired.
    let universe = 1u64 << 12;
    let tree = VebTree::new(universe);

    // Phase 1: every item inserted and removed many times, ending with
    // inserts of even items only.
    (0..universe).into_par_iter().for_each(|x| {
        for _ in 0..20 {
            tree.insert(x);
            tree.remove(x);
        }
        if x % 2 == 0 {
            tree.insert(x);
        }
    });

    assert_eq!(tree.count(), universe / 2);
    for x in 0..universe {
        assert_eq!(tree.contains(x), x % 2 == 0, "item {x}");
    }
    // Successor over the quiescent tree must enumerate the evens.
    let mut cur = 0;
    let mut seen = 0;
    while let Some(s) = tree.successor(cur) {
        assert_eq!(s % 2, 0);
        seen += 1;
        cur = s + 1;
    }
    assert_eq!(seen, universe / 2);
}

#[test]
fn claim_and_reinsert_churn_preserves_count() {
    // Segment-tree usage pattern: threads claim an item, "use" it, insert
    // it back. Total membership must be conserved.
    let universe = 4096u64;
    let tree = VebTree::new_full(universe);

    (0..32u64).into_par_iter().for_each(|_| {
        for _ in 0..2_000 {
            if let Some(x) = tree.claim_first_ge(0) {
                tree.insert(x);
            }
        }
    });

    assert_eq!(tree.count(), universe);
    for x in 0..universe {
        assert!(tree.contains(x));
    }
}

#[test]
fn contended_claims_front_and_back_partition_universe() {
    // Half the threads claim from the front, half claim contiguous pairs
    // from the back; claims must never overlap.
    let universe = 1u64 << 12;
    let tree = VebTree::new_full(universe);
    let owned: Vec<AtomicU64> = (0..universe).map(|_| AtomicU64::new(0)).collect();

    (0..256u64).into_par_iter().for_each(|i| {
        if i % 2 == 0 {
            for _ in 0..4 {
                if let Some(x) = tree.claim_first_ge(0) {
                    owned[x as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            for _ in 0..2 {
                if let Some(s) = tree.claim_contiguous_from_back(2) {
                    owned[s as usize].fetch_add(1, Ordering::Relaxed);
                    owned[s as usize + 1].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    });

    for (i, w) in owned.iter().enumerate() {
        assert!(w.load(Ordering::Relaxed) <= 1, "item {i} multiply claimed");
    }
    let claimed: u64 = owned.iter().map(|w| w.load(Ordering::Relaxed)).sum();
    assert_eq!(tree.count(), universe - claimed);
}

#[test]
fn successor_under_concurrent_mutation_stays_in_bounds() {
    // Searches racing with mutations must never return out-of-universe or
    // crash; values returned must have been members at some point.
    let universe = 1u64 << 10;
    let tree = VebTree::new(universe);
    for x in (0..universe).step_by(3) {
        tree.insert(x);
    }

    rayon::scope(|s| {
        s.spawn(|_| {
            for round in 0..50 {
                for x in 0..universe {
                    if (x + round) % 2 == 0 {
                        tree.insert(x);
                    } else {
                        tree.remove(x);
                    }
                }
            }
        });
        s.spawn(|_| {
            for _ in 0..20_000 {
                if let Some(v) = tree.successor(17) {
                    assert!(v < universe && v >= 17);
                }
                if let Some(v) = tree.predecessor(universe - 17) {
                    assert!(v <= universe - 17);
                }
            }
        });
    });
}
