//! Offline stand-in for the `criterion` crate (see the workspace
//! `Cargo.toml` for why external dependencies are vendored as shims).
//!
//! Implements the subset of the criterion 0.5 API the bench targets
//! use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `Throughput`,
//! and `BenchmarkId`. Instead of criterion's statistical engine it runs
//! each closure `sample_size` times and prints mean wall-clock time (and
//! throughput when configured) — enough to compile every bench target
//! and produce indicative numbers, not publication-grade statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("value", f);
        group.finish();
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        self.report(&id.to_string(), &bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        if bencher.iters == 0 {
            println!("{}/{id}: no iterations recorded", self.name);
            return;
        }
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        let mut line = format!("{}/{id}: {:.3} ms/iter", self.name, per_iter * 1e3);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                line += &format!(" ({:.0} elem/s)", n as f64 / per_iter);
            }
            Some(Throughput::Bytes(n)) => {
                line += &format!(" ({:.0} MiB/s)", n as f64 / per_iter / (1 << 20) as f64);
            }
            None => {}
        }
        println!("{line}");
    }
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{parameter}", function_name.into()) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// `black_box` passthrough that defeats trivial constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }
}
