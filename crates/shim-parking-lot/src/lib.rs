//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors minimal shims for its external dependencies (see
//! the workspace `Cargo.toml`). This one maps `parking_lot`'s
//! non-poisoning lock API onto `std::sync` primitives: same method
//! surface the workspace uses (`lock`, `try_lock`, guards), same
//! semantics except fairness/parking details that no caller relies on.

use std::sync::PoisonError;

/// Non-poisoning mutex over [`std::sync::Mutex`].
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Non-poisoning rwlock over [`std::sync::RwLock`].
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
